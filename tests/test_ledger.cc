/**
 * @file
 * Run-ledger tests: content-addressed record/hit semantics, crash
 * recovery (truncated index tails, malformed lines, duplicate keys,
 * missing blobs — always a warning, never an abort), a seeded
 * mutation fuzz over the index file (riding the ASan/UBSan CI jobs),
 * config-hash properties, schema-v4 round-trips, trend analysis over
 * synthetic histories, and the observer-effect guard: arming the
 * ledger must not move a single simulated number.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/run_ledger.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "ledger/ledger.hh"
#include "ledger/trend.hh"
#include "uarch/params.hh"
#include "workloads/workloads.hh"

using namespace helios;
namespace fs = std::filesystem;

namespace
{

/** Fresh per-test ledger directory + captured logger output, so the
 *  recovery-warning spellings can be asserted. */
class LedgerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = ::testing::TempDir() + "ledger_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        fs::remove_all(dir);
        Logger::global().captureText(&captured);
    }

    void
    TearDown() override
    {
        Logger::global().captureText(nullptr);
        Ledger::disarm();
        fs::remove_all(dir);
    }

    std::string
    logText() const
    {
        return captured.str();
    }

    static LedgerKey
    key(uint64_t program, uint64_t config, uint64_t budget = 1000,
        const std::string &build = "test-build")
    {
        LedgerKey k;
        k.programHash = program;
        k.configHash = config;
        k.budget = budget;
        k.build = build;
        return k;
    }

    static JsonValue
    meta(const std::string &workload, const std::string &mode,
         double ipc)
    {
        JsonValue m = JsonValue::object();
        m.set("workload", JsonValue(workload));
        m.set("mode", JsonValue(mode));
        m.set("ipc", JsonValue(ipc));
        return m;
    }

    std::string
    indexPath() const
    {
        return dir + "/index.jsonl";
    }

    std::string
    readFile(const std::string &path) const
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    }

    void
    writeFile(const std::string &path, const std::string &text) const
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text;
    }

    std::string dir;
    std::ostringstream captured;
};

} // namespace

// ---------------------------------------------------------------------
// Record / hit semantics
// ---------------------------------------------------------------------

TEST_F(LedgerTest, RecordThenKeyedHit)
{
    Ledger ledger(dir);
    EXPECT_TRUE(ledger.record(key(1, 2), meta("w", "m", 1.5), "blob"));
    EXPECT_FALSE(ledger.record(key(1, 2), meta("w", "m", 1.5), "blob"));
    EXPECT_EQ(ledger.recorded(), 1u);
    EXPECT_EQ(ledger.hits(), 1u);
    ASSERT_EQ(ledger.records().size(), 1u);
    EXPECT_EQ(ledger.loadBlob(ledger.records()[0]), "blob");

    // Any key component makes a different record.
    EXPECT_TRUE(ledger.record(key(9, 2), meta("w", "m", 1.5), "b"));
    EXPECT_TRUE(ledger.record(key(1, 9), meta("w", "m", 1.5), "b"));
    EXPECT_TRUE(ledger.record(key(1, 2, 9), meta("w", "m", 1.5), "b"));
    EXPECT_TRUE(
        ledger.record(key(1, 2, 1000, "other"), meta("w", "m", 1.5),
                      "b"));
    EXPECT_EQ(ledger.records().size(), 5u);
}

TEST_F(LedgerTest, PersistsAcrossReopen)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 2), meta("crc32", "Helios", 1.5), "blob-a");
        ledger.record(key(3, 4), meta("fft", "NoFusion", 0.9), "blob-b");
    }
    Ledger reopened(dir);
    EXPECT_EQ(reopened.recoveryWarnings(), 0u);
    ASSERT_EQ(reopened.records().size(), 2u);
    EXPECT_EQ(reopened.records()[0].seq, 0u);
    EXPECT_EQ(reopened.records()[1].seq, 1u);
    EXPECT_EQ(reopened.records()[1].meta.at("workload").asString(),
              "fft");
    EXPECT_EQ(reopened.loadBlob(reopened.records()[0]), "blob-a");
    EXPECT_NE(reopened.find(key(3, 4)), nullptr);
    EXPECT_EQ(reopened.find(key(5, 6)), nullptr);
}

TEST_F(LedgerTest, SequenceNumbersContinueAfterReopen)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
    }
    Ledger reopened(dir);
    reopened.record(key(2, 2), meta("b", "m", 1.0), "y");
    EXPECT_EQ(reopened.records()[1].seq, 1u);
}

// ---------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------

TEST_F(LedgerTest, TruncatedIndexTailIsDroppedWithWarning)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
        ledger.record(key(2, 2), meta("b", "m", 2.0), "y");
    }
    // Simulate a crash mid-append: chop the trailing newline plus a
    // chunk of the final line.
    const std::string text = readFile(indexPath());
    writeFile(indexPath(), text.substr(0, text.size() - 30));

    Ledger recovered(dir);
    EXPECT_EQ(recovered.records().size(), 1u);
    EXPECT_GE(recovered.recoveryWarnings(), 1u);
    EXPECT_NE(logText().find("truncated"), std::string::npos)
        << logText();

    // Recovery compacted the index: a second reopen is clean.
    Ledger clean(dir);
    EXPECT_EQ(clean.recoveryWarnings(), 0u);
    EXPECT_EQ(clean.records().size(), 1u);
}

TEST_F(LedgerTest, AppendAfterTruncationLandsOnCleanTail)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
    }
    const std::string text = readFile(indexPath());
    writeFile(indexPath(), text.substr(0, text.size() - 5));

    Ledger recovered(dir);
    EXPECT_EQ(recovered.records().size(), 0u);
    EXPECT_TRUE(
        recovered.record(key(2, 2), meta("b", "m", 2.0), "y"));

    Ledger reopened(dir);
    EXPECT_EQ(reopened.recoveryWarnings(), 0u);
    ASSERT_EQ(reopened.records().size(), 1u);
    EXPECT_EQ(reopened.records()[0].meta.at("workload").asString(),
              "b");
}

TEST_F(LedgerTest, MalformedLineIsSkippedWithWarning)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
        ledger.record(key(2, 2), meta("b", "m", 2.0), "y");
    }
    // Corrupt the middle: valid line, junk line, valid line.
    const std::string text = readFile(indexPath());
    const size_t newline = text.find('\n');
    writeFile(indexPath(), text.substr(0, newline + 1) +
                               "{not json at all\n" +
                               text.substr(newline + 1));

    Ledger recovered(dir);
    EXPECT_EQ(recovered.records().size(), 2u);
    EXPECT_GE(recovered.recoveryWarnings(), 1u);
    EXPECT_NE(logText().find("malformed"), std::string::npos)
        << logText();
}

TEST_F(LedgerTest, ForeignJsonLineIsSkippedNotAdopted)
{
    // A valid JSON object that is not a ledger line (no schema tag)
    // must be skipped, not half-parsed into a record.
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
    }
    const std::string text = readFile(indexPath());
    writeFile(indexPath(), "{\"version\": 4}\n" + text);

    Ledger recovered(dir);
    EXPECT_EQ(recovered.records().size(), 1u);
    EXPECT_GE(recovered.recoveryWarnings(), 1u);
}

TEST_F(LedgerTest, DuplicateKeyKeepsFirstWithWarning)
{
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("first", "m", 1.0), "x");
    }
    // Re-ingest the same line (merged ledgers, double ingest).
    const std::string text = readFile(indexPath());
    writeFile(indexPath(), text + text);

    Ledger recovered(dir);
    ASSERT_EQ(recovered.records().size(), 1u);
    EXPECT_EQ(recovered.records()[0].meta.at("workload").asString(),
              "first");
    EXPECT_GE(recovered.recoveryWarnings(), 1u);
    EXPECT_NE(logText().find("duplicate"), std::string::npos)
        << logText();
}

TEST_F(LedgerTest, MissingBlobWarnsAndSelfHealsOnHit)
{
    Ledger ledger(dir);
    ledger.record(key(1, 1), meta("a", "m", 1.0), "the blob");
    const std::string blob_path =
        dir + "/" + ledger.records()[0].blob;
    fs::remove(blob_path);

    // Reading degrades to a warning + empty string, never a throw.
    EXPECT_EQ(ledger.loadBlob(ledger.records()[0]), "");
    EXPECT_NE(logText().find("missing"), std::string::npos)
        << logText();

    // A keyed hit re-materializes the blob (determinism: same key,
    // same content).
    EXPECT_FALSE(
        ledger.record(key(1, 1), meta("a", "m", 1.0), "the blob"));
    EXPECT_EQ(ledger.loadBlob(ledger.records()[0]), "the blob");
}

TEST_F(LedgerTest, GcRemovesOrphanBlobsKeepsReferenced)
{
    Ledger ledger(dir);
    ledger.record(key(1, 1), meta("a", "m", 1.0), "keep me");
    writeFile(dir + "/blobs/orphan.json", "crash leftover");
    writeFile(dir + "/blobs/orphan2.json", "another");

    EXPECT_EQ(ledger.gc(), 2u);
    EXPECT_FALSE(fs::exists(dir + "/blobs/orphan.json"));
    EXPECT_EQ(ledger.loadBlob(ledger.records()[0]), "keep me");
}

TEST_F(LedgerTest, SeededMutationFuzzNeverAborts)
{
    // Build a healthy three-record index, then hammer it with seeded
    // random mutations (byte flips, truncations, line splices). Every
    // mutant must open without throwing, salvage whatever parses, and
    // accept a fresh append. Runs under the ASan/UBSan CI jobs.
    {
        Ledger ledger(dir);
        ledger.record(key(1, 1), meta("a", "m", 1.0), "x");
        ledger.record(key(2, 2), meta("b", "m", 2.0), "y");
        ledger.record(key(3, 3), meta("c", "m", 3.0), "z");
    }
    const std::string healthy = readFile(indexPath());
    std::mt19937 rng(0xC0FFEE);

    for (int round = 0; round < 64; ++round) {
        std::string mutant = healthy;
        const int kind = int(rng() % 3);
        if (kind == 0 && !mutant.empty()) {
            // Byte flips.
            for (int i = 0; i < 4; ++i)
                mutant[rng() % mutant.size()] = char(rng() % 256);
        } else if (kind == 1 && !mutant.empty()) {
            // Truncation at a random offset.
            mutant.resize(rng() % mutant.size());
        } else {
            // Splice a random chunk into a random position.
            std::string chunk;
            for (int i = 0; i < 16; ++i)
                chunk += char(rng() % 256);
            mutant.insert(rng() % (mutant.size() + 1), chunk);
        }
        writeFile(indexPath(), mutant);

        ASSERT_NO_THROW({
            Ledger recovered(dir);
            EXPECT_LE(recovered.records().size(), 3u);
            recovered.record(key(100 + round, 7),
                             meta("fresh", "m", 1.0), "new");
        }) << "round " << round;

        // The mutant was compacted; the fresh append must round-trip.
        Ledger reopened(dir);
        EXPECT_NE(reopened.find(key(100 + round, 7)), nullptr)
            << "round " << round;
    }
}

// ---------------------------------------------------------------------
// Config hash
// ---------------------------------------------------------------------

TEST(ConfigHash, DistinguishesResultAffectingFields)
{
    const CoreParams base = CoreParams::icelake(FusionMode::Helios);
    const uint64_t h = configHash(base);
    EXPECT_EQ(h, configHash(base)); // deterministic

    // Every fusion mode hashes differently.
    EXPECT_NE(h, configHash(CoreParams::icelake(FusionMode::None)));
    EXPECT_NE(h,
              configHash(CoreParams::icelake(FusionMode::RiscvFusion)));

    // Structural parameters move the hash.
    CoreParams resized = base;
    resized.robSize += 1;
    EXPECT_NE(h, configHash(resized));

    CoreParams widened = base;
    widened.fetchWidth += 1;
    EXPECT_NE(h, configHash(widened));
}

TEST(ConfigHash, IgnoresObserverFields)
{
    // Observers (audit, tracing, profiling, histogram sampling) must
    // not change what the run computes, so they are excluded from the
    // identity — a profiled run is a replay of the unprofiled one.
    const CoreParams base = CoreParams::icelake(FusionMode::Helios);
    const uint64_t h = configHash(base);

    CoreParams observed = base;
    observed.audit = !observed.audit;
    observed.profile = !observed.profile;
    observed.sampleHistograms = !observed.sampleHistograms;
    observed.profileWindowCycles += 12345;
    EXPECT_EQ(h, configHash(observed));
}

TEST(ConfigHash, IgnoresRunBudget)
{
    // The budget is keyed separately in the ledger; the config digest
    // only fingerprints the machine.
    const CoreParams base = CoreParams::icelake(FusionMode::Helios);
    CoreParams capped = base;
    capped.maxInstructions = 12345;
    capped.maxCycles = 99999;
    EXPECT_EQ(configHash(base), configHash(capped));
}

// ---------------------------------------------------------------------
// Schema v4
// ---------------------------------------------------------------------

TEST(ReportSchemaV4, ConfigHashRoundTrips)
{
    RunResult result;
    result.workload = "crc32";
    result.mode = FusionMode::Helios;
    result.cycles = 100;
    result.instructions = 150;
    result.programHash = 0x1111;
    result.configHash = 0x2222;

    RunReportFile file;
    file.add(result, 1000);
    const JsonValue json = file.toJson();
    EXPECT_EQ(json.at("version").asUint(), kRunReportVersion);
    EXPECT_EQ(json.at("runs").at(size_t(0)).at("config_hash").asUint(),
              0x2222u);

    const RunReportFile parsed =
        RunReportFile::fromJsonText(file.toJsonText());
    ASSERT_EQ(parsed.runs.size(), 1u);
    EXPECT_EQ(parsed.runs[0].configHash, 0x2222u);
    EXPECT_TRUE(parsed == file);
}

TEST(ReportSchemaV4, PreV4FilesParseWithZeroConfigHash)
{
    RunResult result;
    result.workload = "crc32";
    result.mode = FusionMode::Helios;
    result.configHash = 0x2222;
    RunReportFile file;
    file.add(result, 1000);

    // Strip the v4 field and stamp older versions: absent
    // config_hash must default to zero, not fail the parse.
    for (const uint64_t version :
         {uint64_t(1), uint64_t(2), uint64_t(3)}) {
        JsonValue json = file.toJson();
        json.set("version", version);
        JsonValue stripped = JsonValue::object();
        for (const auto &[name, field] :
             json.at("runs").at(size_t(0)).members())
            if (name != "config_hash")
                stripped.set(name, field);
        JsonValue runs = JsonValue::array();
        runs.push(stripped);
        json.set("runs", runs);

        const RunReportFile parsed =
            RunReportFile::fromJsonText(json.dump(2));
        EXPECT_EQ(parsed.version, version);
        ASSERT_EQ(parsed.runs.size(), 1u);
        EXPECT_EQ(parsed.runs[0].configHash, 0u);
    }
}

TEST(ReportSchemaV4, RunnerStampsConfigHash)
{
    const Workload &workload = findWorkload("crc32");
    const RunResult result =
        runOne(workload, FusionMode::Helios, 5000);
    EXPECT_EQ(result.configHash,
              configHash(CoreParams::icelake(FusionMode::Helios)));
    const RunReport report = makeRunReport(result, 5000);
    EXPECT_EQ(report.configHash, result.configHash);
}

// ---------------------------------------------------------------------
// Trend analysis
// ---------------------------------------------------------------------

namespace
{

TrendSeries
seriesOf(std::initializer_list<double> values)
{
    TrendSeries series;
    series.workload = "w";
    series.mode = "m";
    series.metric = "ipc";
    uint64_t seq = 0;
    for (const double value : values)
        series.points.push_back({seq++, value, "build"});
    return series;
}

} // namespace

TEST(Trend, FlagsInjectedRegression)
{
    const TrendSeries series =
        seriesOf({1.50, 1.51, 1.49, 1.50, 1.20});
    TrendOptions options; // window 5, 2%, higher-is-better
    const std::vector<TrendFlag> flags = analyzeTrend(series, options);
    ASSERT_EQ(flags.size(), 1u);
    EXPECT_NEAR(flags[0].latest, 1.20, 1e-9);
    EXPECT_NEAR(flags[0].reference, 1.50, 0.01);
    EXPECT_LT(flags[0].delta, -0.02);
}

TEST(Trend, CleanHistoryDoesNotFlag)
{
    const TrendSeries series =
        seriesOf({1.50, 1.51, 1.49, 1.50, 1.495});
    EXPECT_TRUE(analyzeTrend(series, TrendOptions()).empty());
}

TEST(Trend, ImprovementIsNotARegression)
{
    const TrendSeries series = seriesOf({1.50, 1.50, 1.80});
    EXPECT_TRUE(analyzeTrend(series, TrendOptions()).empty());
}

TEST(Trend, LowerIsBetterFlipsDirection)
{
    TrendOptions options;
    options.higherIsBetter = false; // e.g. peak RSS
    const TrendSeries rising = seriesOf({100, 101, 99, 100, 140});
    EXPECT_EQ(analyzeTrend(rising, options).size(), 1u);
    const TrendSeries falling = seriesOf({100, 101, 99, 100, 80});
    EXPECT_TRUE(analyzeTrend(falling, options).empty());
}

TEST(Trend, SinglePointHasNoHistory)
{
    EXPECT_TRUE(analyzeTrend(seriesOf({1.5}), TrendOptions()).empty());
    EXPECT_TRUE(analyzeTrend(seriesOf({}), TrendOptions()).empty());
}

TEST(Trend, WindowLimitsTheReference)
{
    // Ancient points outside the window must not drag the reference:
    // with window 2 the mean is (1.0 + 1.0) / 2, so 0.97 is within
    // 2%... but with the full history (mean ≈ 2.0) it would flag.
    TrendOptions options;
    options.window = 2;
    const TrendSeries series =
        seriesOf({3.0, 3.0, 3.0, 1.0, 1.0, 0.99});
    EXPECT_TRUE(analyzeTrend(series, options).empty());

    options.window = 6;
    EXPECT_EQ(analyzeTrend(series, options).size(), 1u);
}

TEST_F(LedgerTest, CollectSeriesGroupsByWorkloadModeAndBudget)
{
    Ledger ledger(dir);
    ledger.record(key(1, 1, 1000, "b1"), meta("crc32", "Helios", 1.5),
                  "");
    ledger.record(key(1, 1, 1000, "b2"), meta("crc32", "Helios", 1.4),
                  "");
    ledger.record(key(1, 2, 1000, "b1"),
                  meta("crc32", "NoFusion", 1.0), "");
    // Different budget ⇒ different series, not a fake regression.
    ledger.record(key(1, 1, 500, "b1"), meta("crc32", "Helios", 0.7),
                  "");
    // Non-numeric and absent metrics are skipped.
    JsonValue odd = JsonValue::object();
    odd.set("workload", JsonValue("crc32"));
    odd.set("mode", JsonValue("Helios"));
    odd.set("ipc", JsonValue("not a number"));
    ledger.record(key(1, 1, 1000, "b3"), std::move(odd), "");

    const std::vector<TrendSeries> series =
        collectTrendSeries(ledger, "ipc");
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0].workload, "crc32");
    EXPECT_EQ(series[0].mode, "Helios");
    EXPECT_EQ(series[0].budget, 1000u);
    ASSERT_EQ(series[0].points.size(), 2u);
    EXPECT_EQ(series[0].points[0].build, "b1");
    EXPECT_EQ(series[0].points[1].build, "b2");
    EXPECT_EQ(series[1].points.size(), 1u);
    EXPECT_EQ(series[2].budget, 500u);
}

// ---------------------------------------------------------------------
// Harness integration & observer-effect guard
// ---------------------------------------------------------------------

namespace
{

void
expectSameRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.archChecksum, b.archChecksum);
    EXPECT_EQ(a.memChecksum, b.memChecksum);
    EXPECT_EQ(a.hartInstructions, b.hartInstructions);
    EXPECT_EQ(a.exited, b.exited);
    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.programHash, b.programHash);
    EXPECT_EQ(a.configHash, b.configHash);
    EXPECT_EQ(a.stats.dump(), b.stats.dump());
}

} // namespace

TEST_F(LedgerTest, ArmedLedgerIsObserverEffectFree)
{
    const Workload &workload = findWorkload("crc32");
    constexpr uint64_t kBudget = 10'000;

    // Timing model: identical numbers with the ledger off and on.
    const RunResult before =
        runOne(workload, FusionMode::Helios, kBudget);
    Ledger::arm(dir);
    const RunResult armed =
        runOne(workload, FusionMode::Helios, kBudget);
    expectSameRun(before, armed);

    // Both functional engines too.
    const bool paths[] = {true, false};
    for (const bool fast : paths) {
        Ledger::disarm();
        const FunctionalResult f_before =
            runFunctional(workload, kBudget, fast);
        Ledger::arm(dir);
        const FunctionalResult f_armed =
            runFunctional(workload, kBudget, fast);
        EXPECT_EQ(f_before.instructions, f_armed.instructions);
        EXPECT_EQ(f_before.archChecksum, f_armed.archChecksum);
        EXPECT_EQ(f_before.memChecksum, f_armed.memChecksum);
        EXPECT_EQ(f_before.exitCode, f_armed.exitCode);
    }
}

TEST_F(LedgerTest, RunMatrixRecordsEveryCellOnce)
{
    const Workload &workload = findWorkload("crc32");
    std::vector<MatrixCell> cells = {
        {workload, FusionMode::Helios, 5'000},
        {workload, FusionMode::None, 5'000},
    };

    const std::vector<RunResult> plain = runMatrix(cells, 1);

    Ledger *ledger = Ledger::arm(dir);
    const std::vector<RunResult> recorded = runMatrix(cells, 1);
    EXPECT_EQ(ledger->recorded(), 2u);
    EXPECT_EQ(ledger->hits(), 0u);
    for (size_t i = 0; i < plain.size(); ++i)
        expectSameRun(plain[i], recorded[i]);

    // The replay is a pure keyed hit: nothing new is written.
    const std::vector<RunResult> replayed = runMatrix(cells, 1);
    EXPECT_EQ(ledger->recorded(), 2u);
    EXPECT_EQ(ledger->hits(), 2u);
    for (size_t i = 0; i < plain.size(); ++i)
        expectSameRun(plain[i], replayed[i]);

    // Recorded blobs are complete single-run report files keyed the
    // way the run identified itself.
    ASSERT_EQ(ledger->records().size(), 2u);
    const RunReportFile blob = RunReportFile::fromJsonText(
        ledger->loadBlob(ledger->records()[0]));
    ASSERT_EQ(blob.runs.size(), 1u);
    EXPECT_EQ(blob.runs[0].workload, "crc32");
    EXPECT_EQ(blob.runs[0].cycles, plain[0].cycles);
    EXPECT_EQ(ledger->records()[0].key.programHash,
              plain[0].programHash);
    EXPECT_EQ(ledger->records()[0].key.configHash,
              plain[0].configHash);
    EXPECT_EQ(ledger->records()[0].key.budget, 5'000u);
}

TEST_F(LedgerTest, RecordRunToLedgerNormalizesUnboundedBudget)
{
    const Workload &workload = findWorkload("crc32");
    const RunResult result =
        runOne(workload, FusionMode::Helios, UINT64_MAX);
    Ledger *ledger = Ledger::arm(dir);
    EXPECT_EQ(recordRunToLedger(result, UINT64_MAX),
              LedgerOutcome::Recorded);
    ASSERT_EQ(ledger->records().size(), 1u);
    EXPECT_EQ(ledger->records()[0].key.budget, 0u);
    EXPECT_EQ(recordRunToLedger(result, UINT64_MAX),
              LedgerOutcome::Hit);
}

TEST_F(LedgerTest, DisarmedRecordingIsANoOp)
{
    Ledger::disarm();
    RunResult result;
    EXPECT_EQ(recordRunToLedger(result, 1000),
              LedgerOutcome::Disarmed);
}

TEST_F(LedgerTest, EnvArmingRespectsExistingLedger)
{
    setenv("HELIOS_LEDGER", dir.c_str(), 1);
    initLedgerFromEnv();
    ASSERT_NE(Ledger::global(), nullptr);
    EXPECT_EQ(Ledger::global()->dir(), dir);

    // A second init (another printBenchHeader) must not re-open and
    // reset counters.
    Ledger *first = Ledger::global();
    initLedgerFromEnv();
    EXPECT_EQ(Ledger::global(), first);
    unsetenv("HELIOS_LEDGER");
}
