/**
 * @file
 * Fast-forward functional engine tests: Hart::runFast()/stepFast()
 * must be bit-identical to the reference Hart::run()/step() across
 * the decoder cache's edge cases — self-modifying code, instruction
 * budgets expiring mid-block, ecall handling inside blocks, indirect
 * jumps leaving the text segment, and fused handlers sitting at the
 * very end of text. Suite-wide equivalence runs through the engine
 * differential harness (harness/differential.hh); a smoke subset is
 * tier-1 here and the full suite rides test_differential_full's slow
 * label via runEngineDifferentialAll in CI.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/differential.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"

using namespace helios;

namespace
{

std::vector<const Workload *>
pick(std::initializer_list<const char *> names)
{
    std::vector<const Workload *> workloads;
    for (const char *name : names)
        workloads.push_back(&findWorkload(name));
    return workloads;
}

/** Run @a source to completion on both engines and assert they agree
 *  on every architectural observable; returns the exit code. */
uint64_t
runBothEngines(const std::string &source,
               uint64_t max_insts = 1'000'000)
{
    const Program prog = assemble(source);

    Memory ref_mem;
    Hart ref(ref_mem);
    ref.reset(prog);
    const uint64_t ref_insts = ref.run(max_insts);

    Memory fast_mem;
    Hart fast(fast_mem);
    fast.reset(prog);
    const uint64_t fast_insts = fast.runFast(max_insts);

    EXPECT_EQ(ref_insts, fast_insts);
    EXPECT_EQ(ref.instsExecuted(), fast.instsExecuted());
    EXPECT_EQ(ref.pc(), fast.pc());
    EXPECT_EQ(ref.exited(), fast.exited());
    EXPECT_EQ(ref.exitCode(), fast.exitCode());
    EXPECT_EQ(ref.output(), fast.output());
    EXPECT_EQ(ref.archChecksum(), fast.archChecksum());
    EXPECT_EQ(ref_mem.checksum(), fast_mem.checksum());
    EXPECT_TRUE(fast.exited()) << "program did not exit";
    return fast.exitCode();
}

} // namespace

TEST(FastEngine, SmokeSubsetBitIdentical)
{
    // Traced lockstep plus untraced end-state over kernels covering
    // the fused idioms: mcf (pointer chase), qsort (scan loops), fft
    // (butterfly address gen), crc32 (table lookups).
    const EngineDiffReport report = runEngineDifferential(
        pick({"605.mcf_s", "qsort", "fft", "crc32"}), 50'000, 5'000);
    EXPECT_TRUE(report.ok()) << report.toJson();
    EXPECT_GT(report.tracedInstructions, 0u);
    EXPECT_GT(report.untracedInstructions, 0u);
}

TEST(FastEngine, AllWorkloadsWithSmcBitIdentical)
{
    // The whole suite plus the self-modifying kernel and the
    // ELF-loaded syscall kernel, budgeted so the sanitizer trees stay
    // fast; the perf job's bench cells rerun the hot kernels at full
    // depth on both engines.
    const EngineDiffReport report =
        runEngineDifferentialAll(100'000, 2'000);
    ASSERT_EQ(report.workloads.size(), allWorkloads().size() + 2);
    EXPECT_EQ(report.workloads[report.workloads.size() - 2],
              "smc_patch");
    EXPECT_EQ(report.workloads.back(), "elf_checksum");
    EXPECT_TRUE(report.ok()) << report.toJson();
}

TEST(FastEngine, SmcWorkloadBitIdentical)
{
    // The self-modifying kernel rewrites an addi immediate in its own
    // hot loop every iteration; any stale decoder-cache entry or
    // block descriptor diverges the checksums immediately.
    const Workload &smc = smcPatchWorkload();
    const EngineDiffReport report =
        runEngineDifferential({&smc}, UINT64_MAX, UINT64_MAX);
    EXPECT_TRUE(report.ok()) << report.toJson();

    Memory mem;
    Hart hart(mem);
    hart.reset(smc.program());
    hart.runFast();
    ASSERT_TRUE(hart.exited());
    EXPECT_EQ(hart.exitCode(), smc.reference());
}

TEST(FastEngine, SmcRewritesTerminatorIntoStraightLine)
{
    // The store turns a block *terminator* (beq) into a nop, merging
    // two basic blocks: block lengths and any fusion spanning the old
    // boundary must be rebuilt, and the next iteration has to fall
    // through into the previously skipped add.
    const std::string source = R"(
        li s0, 0
        li s1, 6
        la t0, spot
    outer:
    spot:
        beq zero, zero, skip
        addi s0, s0, 100
    skip:
        addi s0, s0, 1
        li t1, 0x13        # addi zero, zero, 0 (nop)
        sw t1, 0(t0)
        addi s1, s1, -1
        bnez s1, outer
        mv a0, s0
        li a7, 93
        ecall
    )";
    // Iteration 1 takes the branch (skips the +100); the store then
    // nops it out, so iterations 2..6 fall through: 1 + 5 * 101.
    EXPECT_EQ(runBothEngines(source), 506u);
}

TEST(FastEngine, MaxInstsExpiresMidBlockAndResumes)
{
    // One long straight-line block (16 addis) inside a loop: every
    // budget from 1 up cuts the block at a different interior point.
    // The fast engine must stop on the exact instruction, agree on
    // pc/seq/state, and resume cleanly from mid-block.
    std::string source = "li s0, 0\nli s1, 3\nloop:\n";
    for (int i = 0; i < 16; ++i)
        source += "addi s0, s0, 1\n";
    source += R"(
        addi s1, s1, -1
        bnez s1, loop
        mv a0, s0
        li a7, 93
        ecall
    )";
    const Program prog = assemble(source);

    for (uint64_t budget = 1; budget <= 60; ++budget) {
        Memory ref_mem, fast_mem;
        Hart ref(ref_mem), fast(fast_mem);
        ref.reset(prog);
        fast.reset(prog);
        EXPECT_EQ(ref.run(budget), fast.runFast(budget))
            << "budget " << budget;
        EXPECT_EQ(ref.instsExecuted(), fast.instsExecuted())
            << "budget " << budget;
        EXPECT_EQ(ref.pc(), fast.pc()) << "budget " << budget;
        EXPECT_EQ(ref.archChecksum(), fast.archChecksum())
            << "budget " << budget;

        // Resume from wherever the budget expired.
        ref.run();
        fast.runFast();
        ASSERT_TRUE(fast.exited()) << "budget " << budget;
        EXPECT_EQ(ref.exitCode(), fast.exitCode());
        EXPECT_EQ(fast.exitCode(), 48u) << "budget " << budget;
        EXPECT_EQ(ref.archChecksum(), fast.archChecksum())
            << "budget " << budget;
    }
}

TEST(FastEngine, WriteEcallInsideBlockContinues)
{
    // A non-exit ecall (write) in the middle of the program: the fast
    // engine leaves the dispatch loop, services the call with the pc
    // pinned to the ecall, and re-enters mid-stream. Output and the
    // post-call register state (a0 = bytes written) must match.
    const std::string source = R"(
        .data
    msg:
        .asciz "hi"
        .text
        li a0, 1
        la a1, msg
        li a2, 2
        li a7, 64
        ecall
        addi s0, a0, 40    # a0 holds the write's return value
        mv a0, s0
        li a7, 93
        ecall
    )";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    EXPECT_EQ(runBothEngines(source), 42u);
    hart.runFast();
    EXPECT_EQ(hart.output(), "hi");
}

TEST(FastEngine, JalrToNonTextTargetFaultsIdentically)
{
    // An indirect jump into .data lands on a zero word -> invalid
    // instruction. Both engines must throw FatalError with the same
    // message (same raw word, same faulting pc).
    const std::string source = R"(
        .data
    pool:
        .dword 0
        .text
        la t0, pool
        jalr ra, 0(t0)
    )";
    const Program prog = assemble(source);

    std::string ref_what, fast_what;
    {
        Memory mem;
        Hart hart(mem);
        hart.reset(prog);
        try {
            hart.run();
            FAIL() << "reference engine did not fault";
        } catch (const FatalError &err) {
            ref_what = err.what();
        }
    }
    {
        Memory mem;
        Hart hart(mem);
        hart.reset(prog);
        try {
            hart.runFast();
            FAIL() << "fast engine did not fault";
        } catch (const FatalError &err) {
            fast_what = err.what();
        }
    }
    EXPECT_NE(ref_what.find("invalid instruction"), std::string::npos)
        << ref_what;
    EXPECT_EQ(ref_what, fast_what);
}

TEST(FastEngine, FusedPairAtEndOfTextTakesBranch)
{
    // The final two text words form a fuseable addi+bne whose taken
    // edge is the only way out; the not-taken fall-through would run
    // off the end of text. The fused handler's branch target must win
    // over the text-end sentinel.
    const std::string source = R"(
        li s0, 0
        li s1, 5
        j tail
    done:
        mv a0, s0
        li a7, 93
        ecall
    tail:
        addi s0, s0, 3
        addi s1, s1, -1
        beq s1, zero, done
        addi s0, s0, 0
        bne s1, zero, tail
    )";
    EXPECT_EQ(runBothEngines(source), 15u);
}

TEST(FastEngine, StraightLineOffTextEndFaultsIdentically)
{
    // Straight-line code running past the last text word: the fast
    // engine's text-end sentinel must route to the same
    // invalid-instruction fault the reference engine raises when it
    // fetches the zero word past text.
    const std::string source = R"(
        li s0, 7
        addi s0, s0, 1
    )";
    const Program prog = assemble(source);

    std::string ref_what, fast_what;
    {
        Memory mem;
        Hart hart(mem);
        hart.reset(prog);
        try {
            hart.run();
            FAIL() << "reference engine did not fault";
        } catch (const FatalError &err) {
            ref_what = err.what();
        }
    }
    {
        Memory mem;
        Hart hart(mem);
        hart.reset(prog);
        try {
            hart.runFast();
            FAIL() << "fast engine did not fault";
        } catch (const FatalError &err) {
            fast_what = err.what();
        }
    }
    EXPECT_NE(ref_what.find("invalid instruction"), std::string::npos)
        << ref_what;
    EXPECT_EQ(ref_what, fast_what);
}

TEST(FastEngine, JumpIntoFusedTailExecutesStandalone)
{
    // Fusion only re-points the *head* entry; a branch landing on the
    // pair's tail must execute the tail's own unfused semantics. The
    // loop back-edge targets the second instruction of an addi+addi
    // pair the matcher fuses on entry.
    const std::string source = R"(
        li s0, 0
        li s1, 4
        addi s0, s0, 100   # fused head, executed once
    tail:
        addi s0, s0, 1     # fused tail, also the loop target
        addi s1, s1, -1
        bnez s1, tail
        mv a0, s0
        li a7, 93
        ecall
    )";
    EXPECT_EQ(runBothEngines(source), 104u);
}

TEST(FastEngine, DecoderCacheIntrospection)
{
    // The cache covers every static instruction and the hot kernels
    // actually fuse (the perf claim rests on it).
    const Workload &workload = findWorkload("qsort");
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());
    EXPECT_EQ(hart.fastCacheEntries(), workload.program().code.size());
    EXPECT_GT(hart.fastFusedPairs(), 0u);
}

TEST(FastEngine, TracedStepMatchesReferenceThroughSmc)
{
    // stepFast() must replay the exact reference DynInst stream even
    // while the program patches its own text under the stepper.
    const Workload &smc = smcPatchWorkload();
    Memory ref_mem, fast_mem;
    Hart ref(ref_mem), fast(fast_mem);
    ref.reset(smc.program());
    fast.reset(smc.program());

    DynInst a, b;
    uint64_t steps = 0;
    for (;;) {
        const bool more_ref = ref.step(a);
        const bool more_fast = fast.stepFast(b);
        ASSERT_EQ(more_ref, more_fast) << "at step " << steps;
        if (!more_ref)
            break;
        ASSERT_EQ(a.pc, b.pc) << "at seq " << a.seq;
        ASSERT_EQ(a.nextPc, b.nextPc) << "at seq " << a.seq;
        ASSERT_EQ(a.inst.raw, b.inst.raw) << "at seq " << a.seq;
        ASSERT_EQ(a.effAddr, b.effAddr) << "at seq " << a.seq;
        ASSERT_EQ(a.taken, b.taken) << "at seq " << a.seq;
        ++steps;
    }
    EXPECT_EQ(ref.exitCode(), fast.exitCode());
    EXPECT_EQ(fast.exitCode(), smc.reference());
}
