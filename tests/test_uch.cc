/** @file Unfused Committed History tests (Section IV-A1). */

#include <gtest/gtest.h>

#include "fusion/uch.hh"

using namespace helios;

TEST(Uch, MissThenHitReturnsDistance)
{
    UnfusedCommittedHistory uch;
    EXPECT_FALSE(uch.accessLoad(0x1000, 10));
    auto distance = uch.accessLoad(0x1000, 14);
    ASSERT_TRUE(distance);
    EXPECT_EQ(*distance, 4u);
}

TEST(Uch, MatchConsumesEntry)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x1000, 0);
    EXPECT_TRUE(uch.accessLoad(0x1000, 1));
    // The matching entry was consumed and the matching access is NOT
    // reinserted (a µ-op fuses with a single other µ-op): the next
    // access misses and starts a fresh pair.
    EXPECT_FALSE(uch.accessLoad(0x1000, 5));
    auto distance = uch.accessLoad(0x1000, 9);
    ASSERT_TRUE(distance);
    EXPECT_EQ(*distance, 4u);
}

TEST(Uch, DistanceBeyondWindowIsMiss)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x2000, 0);
    // 65 µ-ops later: outside the 64-µ-op fusion window.
    EXPECT_FALSE(uch.accessLoad(0x2000, 65));
    // But the access re-inserted the line.
    auto distance = uch.accessLoad(0x2000, 70);
    ASSERT_TRUE(distance);
    EXPECT_EQ(*distance, 5u);
}

TEST(Uch, MaxDistanceIsAccepted)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x2000, 0);
    auto distance = uch.accessLoad(0x2000, 64);
    ASSERT_TRUE(distance);
    EXPECT_EQ(*distance, 64u);
}

TEST(Uch, CommitNumberWraps)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x3000, 120);
    // CN wraps mod 128: distance = (10 - 120) & 0x7f = 18.
    auto distance = uch.accessLoad(0x3000, 10);
    ASSERT_TRUE(distance);
    EXPECT_EQ(*distance, 18u);
}

TEST(Uch, LoadsAndStoresAreSeparate)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x4000, 0);
    EXPECT_FALSE(uch.accessStore(0x4000, 3));
    EXPECT_TRUE(uch.accessLoad(0x4000, 5));
}

TEST(Uch, LoadCapacityIsSix)
{
    UnfusedCommittedHistory uch;
    for (unsigned i = 0; i < 6; ++i)
        uch.accessLoad(0x100 + i, i);
    // All six still resident.
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_TRUE(uch.accessLoad(0x100 + i, 10 + i)) << i;
}

TEST(Uch, LruEvictsOldestCommitNumber)
{
    UnfusedCommittedHistory uch;
    for (unsigned i = 0; i < 6; ++i)
        uch.accessLoad(0x200 + i, i);
    // Inserting a seventh line evicts the oldest (CN 0).
    uch.accessLoad(0x300, 6);
    EXPECT_TRUE(uch.accessLoad(0x205, 7));    // young line survives
    EXPECT_FALSE(uch.accessLoad(0x200, 8));   // the oldest was evicted
}

TEST(Uch, StoreHistoryIsSingleEntry)
{
    UnfusedCommittedHistory uch;
    uch.accessStore(0x500, 0);
    uch.accessStore(0x501, 1); // replaces the only entry
    EXPECT_FALSE(uch.accessStore(0x500, 2)); // 0x500 was displaced
    // ... and that miss displaced 0x501 in turn.
    EXPECT_FALSE(uch.accessStore(0x501, 3));
    EXPECT_TRUE(uch.accessStore(0x501, 4));
}

TEST(Uch, ClearDropsEverything)
{
    UnfusedCommittedHistory uch;
    uch.accessLoad(0x600, 0);
    uch.accessStore(0x601, 0);
    uch.clear();
    EXPECT_FALSE(uch.accessLoad(0x600, 1));
    EXPECT_FALSE(uch.accessStore(0x601, 1));
}
