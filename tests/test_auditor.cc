/**
 * @file
 * Pipeline invariant auditor tests.
 *
 * Two halves:
 *  - fuzz: seeded-random programs full of fusable memory idioms run
 *    through the real pipeline under every fusion mode with the
 *    auditor attached; every run must finish with zero violations and
 *    all modes must agree on the final architectural state.
 *  - corruption: hook sequences describing executions the pipeline
 *    must never produce (dropped µ-op, out-of-order commit, illegal
 *    pair, oversized queue, ...) are fed to the auditor directly; each
 *    must be caught. These run in any build — the auditor class is
 *    compiled even when the pipeline's hooks are off.
 */

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "harness/runner.hh"
#include "uarch/auditor.hh"

using namespace helios;

namespace
{

// ---------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------

/**
 * A random kernel biased toward fusion opportunities: clustered
 * loads/stores off shared base registers (s0/s1), interleaved ALU
 * catalysts, and a counted outer loop so squash/replay paths run.
 * Only sp-relative scratch memory is touched.
 */
std::string
randomProgram(Rng &rng)
{
    std::string source;
    source += "addi s0, sp, -1024\n";
    source += "addi s1, sp, -2048\n";
    // Seed a few data registers.
    for (unsigned r = 0; r < 4; ++r)
        source += "li a" + std::to_string(r) + ", " +
                  std::to_string(rng.range(-5000, 5000)) + "\n";
    source += "li s2, " + std::to_string(rng.range(3, 6)) + "\n";
    source += "loop:\n";

    const unsigned body = unsigned(rng.range(24, 48));
    for (unsigned i = 0; i < body; ++i) {
        const std::string base = rng.below(2) ? "s0" : "s1";
        // Built with += rather than "a" + to_string(...): the rvalue
        // operator+ trips GCC 12's -Wrestrict false positive
        // (PR 105651) under -Werror.
        std::string data = "a";
        data += std::to_string(rng.below(4));
        // 8-aligned offsets in a small window cluster accesses into
        // the same fusion regions.
        const std::string off = std::to_string(8 * rng.range(0, 15));
        switch (rng.below(6)) {
          case 0:
            source += "ld " + data + ", " + off + "(" + base + ")\n";
            break;
          case 1:
            source += "lw " + data + ", " + off + "(" + base + ")\n";
            break;
          case 2:
            source += "sd " + data + ", " + off + "(" + base + ")\n";
            break;
          case 3:
            source += "sw " + data + ", " + off + "(" + base + ")\n";
            break;
          case 4:
            source += "add " + data + ", " + data + ", a" +
                      std::to_string(rng.below(4)) + "\n";
            break;
          default:
            source += "addi " + data + ", " + data + ", " +
                      std::to_string(rng.range(-64, 64)) + "\n";
            break;
        }
    }

    source += "addi s2, s2, -1\n";
    source += "bnez s2, loop\n";
    source += "add a0, a0, a1\n";
    source += "li a7, 93\necall\n";
    return source;
}

Workload
makeWorkload(const std::string &name, const std::string &source)
{
    Workload workload;
    workload.name = name;
    workload.suite = Suite::MiBench;
    workload.description = "auditor fuzz kernel";
    workload.source = source;
    return workload;
}

const FusionMode allModes[] = {FusionMode::None, FusionMode::RiscvFusion,
                               FusionMode::CsfSbr,
                               FusionMode::RiscvFusionPP,
                               FusionMode::Helios, FusionMode::Oracle};

// ---------------------------------------------------------------------
// Hook-level helpers for the corruption tests
// ---------------------------------------------------------------------

DynInst
aluDyn(uint64_t seq, unsigned rd = 5)
{
    DynInst dyn;
    dyn.seq = seq;
    dyn.pc = 0x1000 + 4 * seq;
    dyn.inst.op = Op::Addi;
    dyn.inst.rd = uint8_t(rd);
    dyn.inst.rs1 = uint8_t(rd);
    dyn.inst.imm = 1;
    return dyn;
}

DynInst
memDyn(uint64_t seq, Op op, unsigned base, uint64_t addr)
{
    DynInst dyn;
    dyn.seq = seq;
    dyn.pc = 0x1000 + 4 * seq;
    dyn.inst.op = op;
    dyn.inst.rd = 10;
    dyn.inst.rs1 = uint8_t(base);
    dyn.inst.rs2 = 11;
    dyn.effAddr = addr;
    return dyn;
}

Uop
makeUop(const DynInst &dyn)
{
    Uop uop;
    uop.seq = dyn.seq;
    uop.dyn = dyn;
    return uop;
}

/** True when at least one recorded violation names @a invariant. */
bool
caught(const PipelineAuditor &auditor, const std::string &invariant)
{
    for (const AuditViolation &violation : auditor.violations())
        if (violation.invariant == invariant)
            return true;
    return false;
}

class AuditorFuzz : public ::testing::TestWithParam<unsigned>
{};

} // namespace

// ---------------------------------------------------------------------
// Fuzz: real pipeline, every fusion mode, zero violations expected
// ---------------------------------------------------------------------

TEST_P(AuditorFuzz, RandomProgramRunsCleanUnderEveryMode)
{
    if (!auditHooksCompiled())
        GTEST_SKIP() << "pipeline built without HELIOS_AUDIT hooks";

    Rng rng(GetParam() * 0x9e3779b9u + 101);
    const Workload workload = makeWorkload(
        "fuzz" + std::to_string(GetParam()), randomProgram(rng));

    RunResult baseline;
    if (std::getenv("HELIOS_DUMP_FUZZ"))
        std::fprintf(stderr, "--- seed %u ---\n%s", GetParam(),
                     workload.source.c_str());
    for (FusionMode mode : allModes) {
        if (std::getenv("HELIOS_DUMP_FUZZ"))
            std::fprintf(stderr, "mode %s\n", fusionModeName(mode));
        CoreParams params = CoreParams::icelake(mode);
        params.audit = true;
        const RunResult result = runOne(workload, params);

        ASSERT_TRUE(result.audited);
        EXPECT_GT(result.auditChecks, 0u);
        EXPECT_TRUE(result.auditViolations.empty())
            << fusionModeName(mode) << ": "
            << result.auditViolations.front().invariant << " - "
            << result.auditViolations.front().detail;
        EXPECT_TRUE(result.exited) << fusionModeName(mode);

        if (mode == FusionMode::None) {
            baseline = result;
            continue;
        }
        EXPECT_EQ(result.archChecksum, baseline.archChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(result.memChecksum, baseline.memChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(result.instructions, baseline.instructions)
            << fusionModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditorFuzz, ::testing::Range(0u, 12u));

// ---------------------------------------------------------------------
// Corruption: executions the pipeline must never produce are caught
// ---------------------------------------------------------------------

TEST(AuditorCorruption, CleanRunIsClean)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    for (uint64_t seq = 0; seq < 4; ++seq)
        auditor.onFetch(makeUop(aluDyn(seq)), seq);
    for (uint64_t seq = 0; seq < 4; ++seq)
        auditor.onCommit(makeUop(aluDyn(seq)), 10 + seq);
    auditor.finalize(true, 20);
    EXPECT_TRUE(auditor.ok()) << auditor.toJson();
    EXPECT_GT(auditor.checksPerformed(), 0u);
    EXPECT_EQ(auditor.uopsAudited(), 4u);
}

TEST(AuditorCorruption, DroppedUopDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    for (uint64_t seq = 0; seq < 5; ++seq)
        auditor.onFetch(makeUop(aluDyn(seq)), seq);
    for (uint64_t seq = 0; seq < 5; ++seq) {
        if (seq == 2)
            continue; // µ-op silently vanishes
        auditor.onCommit(makeUop(aluDyn(seq)), 10 + seq);
    }
    auditor.finalize(true, 20);
    EXPECT_FALSE(auditor.ok());
    EXPECT_TRUE(caught(auditor, "leak.inflight")) << auditor.toJson();
    EXPECT_TRUE(caught(auditor, "leak.count")) << auditor.toJson();
}

TEST(AuditorCorruption, OutOfOrderCommitDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    auditor.onFetch(makeUop(aluDyn(0)), 0);
    auditor.onFetch(makeUop(aluDyn(1)), 0);
    auditor.onCommit(makeUop(aluDyn(1)), 10);
    auditor.onCommit(makeUop(aluDyn(0)), 11);
    EXPECT_TRUE(caught(auditor, "commit.order")) << auditor.toJson();
}

TEST(AuditorCorruption, DoubleCommitDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    auditor.onFetch(makeUop(aluDyn(0)), 0);
    auditor.onCommit(makeUop(aluDyn(0)), 10);
    auditor.onCommit(makeUop(aluDyn(0)), 11);
    EXPECT_TRUE(caught(auditor, "commit.twice")) << auditor.toJson();
}

TEST(AuditorCorruption, CommitWithoutFetchDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    auditor.onCommit(makeUop(aluDyn(7)), 10);
    EXPECT_TRUE(caught(auditor, "commit.unknown")) << auditor.toJson();
}

TEST(AuditorCorruption, IllegalConsecutivePairDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::CsfSbr));
    const DynInst head = aluDyn(0, 5);
    DynInst tail = aluDyn(1, 6);
    tail.inst.op = Op::Divu; // addi+divu matches no Table I idiom
    auditor.onFetch(makeUop(head), 0);
    auditor.onFetch(makeUop(tail), 0);
    auditor.onFusePair(makeUop(head), tail, FusionKind::CsfOther, true,
                       1);
    EXPECT_TRUE(caught(auditor, "pair.illegal_idiom"))
        << auditor.toJson();
}

TEST(AuditorCorruption, ConsecutivePairWithGapDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::CsfSbr));
    const DynInst head = memDyn(0, Op::Ld, 8, 0x2000);
    const DynInst tail = memDyn(2, Op::Ld, 8, 0x2008);
    auditor.onFetch(makeUop(head), 0);
    auditor.onFetch(makeUop(aluDyn(1)), 0);
    auditor.onFetch(makeUop(tail), 0);
    auditor.onFusePair(makeUop(head), tail, FusionKind::CsfMem, true, 1);
    EXPECT_TRUE(caught(auditor, "pair.csf_distance"))
        << auditor.toJson();
}

TEST(AuditorCorruption, MixedLoadStorePairDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    const DynInst head = memDyn(0, Op::Ld, 8, 0x2000);
    const DynInst tail = memDyn(2, Op::Sd, 8, 0x2008);
    auditor.onFetch(makeUop(head), 0);
    auditor.onFetch(makeUop(aluDyn(1)), 0);
    auditor.onFetch(makeUop(tail), 0);
    auditor.onFusePair(makeUop(head), tail, FusionKind::NcsfMem, false,
                       1);
    EXPECT_TRUE(caught(auditor, "pair.mixed_kind")) << auditor.toJson();
}

TEST(AuditorCorruption, PairOrderInversionDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    const DynInst head = memDyn(3, Op::Ld, 8, 0x2000);
    const DynInst tail = memDyn(1, Op::Ld, 8, 0x2008);
    auditor.onFetch(makeUop(tail), 0);
    auditor.onFetch(makeUop(head), 0);
    auditor.onFusePair(makeUop(head), tail, FusionKind::NcsfMem, false,
                       1);
    EXPECT_TRUE(caught(auditor, "pair.order")) << auditor.toJson();
}

TEST(AuditorCorruption, UnfuseAfterAbsorbDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    const DynInst head = memDyn(0, Op::Ld, 8, 0x2000);
    const DynInst tail = memDyn(2, Op::Ld, 8, 0x2008);
    auditor.onFetch(makeUop(head), 0);
    auditor.onFetch(makeUop(aluDyn(1)), 0);
    auditor.onFetch(makeUop(tail), 0);
    auditor.onFusePair(makeUop(head), tail, FusionKind::NcsfMem, false,
                       1);
    auditor.onTailAbsorbed(tail.seq, head.seq, 2);
    // Unfusing now would drop the tail: its marker is gone.
    auditor.onUnfuse(makeUop(head), tail.seq, 3);
    EXPECT_TRUE(caught(auditor, "pair.unfuse_absorbed"))
        << auditor.toJson();
}

TEST(AuditorCorruption, StructuralOverflowDetected)
{
    const CoreParams params = CoreParams::icelake(FusionMode::Helios);
    PipelineAuditor auditor(params);

    std::vector<Uop> storage;
    storage.reserve(params.robSize + 1);
    RingBuffer<Uop *> rob(params.robSize + 1);
    for (uint64_t seq = 0; seq <= params.robSize; ++seq) {
        storage.push_back(makeUop(aluDyn(seq)));
        rob.push_back(&storage.back());
    }

    AuditView view;
    view.cycle = 1;
    view.rob = &rob;
    auditor.onCycleEnd(view);
    EXPECT_TRUE(caught(auditor, "structure.overflow"))
        << auditor.toJson();
}

TEST(AuditorCorruption, LoadQueueDisorderDetected)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    Uop older = makeUop(memDyn(1, Op::Ld, 8, 0x2000));
    Uop younger = makeUop(memDyn(2, Op::Ld, 8, 0x2008));
    RingBuffer<Uop *> lq(2);
    lq.push_back(&younger); // inverted
    lq.push_back(&older);

    AuditView view;
    view.lq = &lq;
    // Ordered scans are sampled; drive enough cycles to trigger one.
    for (uint64_t cycle = 1; cycle <= 64; ++cycle) {
        view.cycle = cycle;
        auditor.onCycleEnd(view);
    }
    EXPECT_TRUE(caught(auditor, "structure.order")) << auditor.toJson();
}

TEST(AuditorCorruption, SquashedUopMayRefetch)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    auditor.onFetch(makeUop(aluDyn(0)), 0);
    auditor.onFetch(makeUop(aluDyn(1)), 0);
    auditor.onSquash(makeUop(aluDyn(1)), 5);
    auditor.onFetch(makeUop(aluDyn(1)), 6); // refetch after squash
    auditor.onCommit(makeUop(aluDyn(0)), 10);
    auditor.onCommit(makeUop(aluDyn(1)), 11);
    auditor.finalize(true, 20);
    EXPECT_TRUE(auditor.ok()) << auditor.toJson();
}

TEST(AuditorCorruption, JsonReportNamesViolation)
{
    PipelineAuditor auditor(CoreParams::icelake(FusionMode::Helios));
    auditor.onCommit(makeUop(aluDyn(7)), 10);
    const std::string json = auditor.toJson();
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
    EXPECT_NE(json.find("commit.unknown"), std::string::npos) << json;
    EXPECT_NE(json.find("\"seq\":7"), std::string::npos) << json;
}
