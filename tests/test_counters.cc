/** @file Unit tests for saturating counters. */

#include <gtest/gtest.h>

#include "common/counters.hh"

using namespace helios;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter<2> c;
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter<2> c(3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.isSaturated());
}

TEST(SatCounter, HighThreshold)
{
    SatCounter<2> c;
    EXPECT_FALSE(c.isHigh());
    c.increment();
    EXPECT_FALSE(c.isHigh());
    c.increment();
    EXPECT_TRUE(c.isHigh());
}

TEST(SatCounter, SetClamps)
{
    SatCounter<2> c;
    c.set(200);
    EXPECT_EQ(c.value(), 3);
    c.set(1);
    EXPECT_EQ(c.value(), 1);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(SignedSatCounter, Range)
{
    SignedSatCounter<3> c;
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), -4);
}

TEST(SignedSatCounter, WeakDetection)
{
    SignedSatCounter<3> c;
    EXPECT_TRUE(c.isWeak()); // 0
    c.update(false);
    EXPECT_TRUE(c.isWeak()); // -1
    c.update(false);
    EXPECT_FALSE(c.isWeak()); // -2
}

TEST(SignedSatCounter, PredictionSign)
{
    SignedSatCounter<3> c;
    EXPECT_TRUE(c.predictTaken()); // 0 predicts taken by convention
    c.update(false);
    EXPECT_FALSE(c.predictTaken());
}
