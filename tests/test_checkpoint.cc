/**
 * @file
 * Architectural checkpoint tests: bit-exact serialization round-trips
 * and — the property the sampled-simulation layer stands on —
 * continuation equivalence: a run cut at ANY dynamic instruction
 * index and restored into a fresh hart must finish bit-identically
 * (registers, memory, output, exit state) to the uninterrupted run,
 * through either execution engine. Cuts are exercised mid-basic-
 * block, between the halves of fused decoder-cache pairs, after
 * self-modifying stores, and mid-way through the stdin buffer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/differential.hh"
#include "harness/elf_image.hh"
#include "harness/runner.hh"
#include "sim/checkpoint.hh"
#include "sim/elf_loader.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"
#include "workloads/workloads.hh"

using namespace helios;

namespace
{

/** Everything the differential harness fingerprints a run by. */
struct EndState
{
    uint64_t arch = 0;
    uint64_t mem = 0;
    uint64_t seq = 0;
    bool exited = false;
    uint64_t exitCode = 0;
    std::string output;

    bool operator==(const EndState &other) const = default;
};

EndState
capture(const Hart &hart, const Memory &mem)
{
    return {hart.archChecksum(), mem.checksum(), hart.instsExecuted(),
            hart.exited(),       hart.exitCode(), hart.output()};
}

/** Run @a prog uninterrupted for @a total instructions. */
EndState
runUninterrupted(const Program &prog, uint64_t total, bool fast)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    fast ? hart.runFast(total) : hart.run(total);
    return capture(hart, mem);
}

/** Cut @a prog at dynamic instruction @a cut via the fast engine. */
Checkpoint
cutAt(const Program &prog, uint64_t cut)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    hart.runFast(cut);
    EXPECT_EQ(hart.instsExecuted(), cut);
    return hart.makeCheckpoint(prog.sourceHash);
}

/** Restore @a ckpt and run @a remaining more instructions. */
EndState
continueFrom(const Checkpoint &ckpt, uint64_t remaining, bool fast)
{
    Memory mem;
    Hart hart(mem);
    hart.restoreCheckpoint(ckpt);
    fast ? hart.runFast(remaining) : hart.run(remaining);
    return capture(hart, mem);
}

/** The continuation property at one cut, both engines. */
void
expectCutContinues(const Program &prog, uint64_t cut, uint64_t total)
{
    const EndState full = runUninterrupted(prog, total, true);
    ASSERT_EQ(full, runUninterrupted(prog, total, false))
        << "engines disagree before checkpointing is even involved";

    const Checkpoint ckpt = cutAt(prog, cut);
    EXPECT_EQ(ckpt.instIndex, cut);
    EXPECT_EQ(continueFrom(ckpt, total - cut, true), full)
        << "fast-engine continuation diverged at cut " << cut;
    EXPECT_EQ(continueFrom(ckpt, total - cut, false), full)
        << "reference-engine continuation diverged at cut " << cut;
}

} // namespace

TEST(Checkpoint, SerializeRoundTripBitExact)
{
    const Program prog = findWorkload("qsort").program();
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    hart.runFast(12'345);

    const Checkpoint ckpt = hart.makeCheckpoint(prog.sourceHash);
    EXPECT_EQ(ckpt.instIndex, 12'345u);
    EXPECT_EQ(ckpt.programHash, prog.sourceHash);
    EXPECT_FALSE(ckpt.pages.empty());

    const std::string blob = ckpt.serialize();
    const Checkpoint back = Checkpoint::deserialize(blob);
    EXPECT_TRUE(ckpt == back);
    // Serialization is deterministic, so equal checkpoints produce
    // byte-identical blobs.
    EXPECT_EQ(back.serialize(), blob);
}

TEST(Checkpoint, SaveLoadFileRoundTrip)
{
    const Program prog = findWorkload("crc32").program();
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    hart.runFast(5'000);
    const Checkpoint ckpt = hart.makeCheckpoint(prog.sourceHash);

    const std::string path = ::testing::TempDir() + "ckpt_roundtrip.bin";
    ckpt.save(path);
    const Checkpoint back = Checkpoint::load(path);
    EXPECT_TRUE(ckpt == back);
    std::remove(path.c_str());
}

TEST(Checkpoint, MalformedBlobsThrow)
{
    const Program prog = findWorkload("crc32").program();
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    hart.runFast(1'000);
    const std::string blob =
        hart.makeCheckpoint(prog.sourceHash).serialize();

    EXPECT_THROW(Checkpoint::deserialize(std::string()), FatalError);
    EXPECT_THROW(
        Checkpoint::deserialize(blob.substr(0, blob.size() / 2)),
        FatalError);
    EXPECT_THROW(Checkpoint::deserialize(blob + "x"), FatalError);
    std::string bad_magic = blob;
    bad_magic[0] = 'X';
    EXPECT_THROW(Checkpoint::deserialize(bad_magic), FatalError);
}

TEST(Checkpoint, RestoreRequiresFreshMemory)
{
    const Program prog = findWorkload("crc32").program();
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    hart.runFast(100);
    const Checkpoint ckpt = hart.makeCheckpoint(prog.sourceHash);

    // The hart's memory already holds the program image: restoring
    // on top would silently merge two states.
    EXPECT_THROW(hart.restoreCheckpoint(ckpt), FatalError);
}

TEST(Checkpoint, CutSweepContinuesBitIdentical)
{
    // Arbitrary dynamic indices, chosen to land mid-basic-block and
    // between the halves of fused pairs (the fast engine fuses this
    // kernel's hot loop); instruction-exact runFast stops make every
    // index a legal cut.
    const Program prog = findWorkload("crc32").program();
    const uint64_t total = 60'000;
    for (uint64_t cut : {uint64_t(1), uint64_t(2), uint64_t(777),
                         uint64_t(7'778), uint64_t(30'001),
                         uint64_t(59'999)})
        expectCutContinues(prog, cut, total);
}

TEST(Checkpoint, InitialStateCutEqualsReset)
{
    // Cut 0 — a checkpoint of the freshly reset hart — must behave
    // exactly like reset(prog): the sampling layer uses it for the
    // first interval.
    const Program prog = findWorkload("fft").program();
    expectCutContinues(prog, 0, 20'000);
}

TEST(Checkpoint, PostSmcCutContinues)
{
    // The self-modifying kernel rewrites an addi immediate inside its
    // own hot loop; cuts before, amid and after the patching stores
    // must restore correctly because the pre-decoded caches are
    // rebuilt from the restored memory image, not serialized.
    const Workload &smc = smcPatchWorkload();
    const Program prog = smc.program();

    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    const uint64_t total = hart.runFast();
    ASSERT_TRUE(hart.exited());
    const EndState full = capture(hart, mem);
    ASSERT_EQ(hart.exitCode(), smc.reference());

    for (uint64_t cut :
         {total / 7, total / 3, total / 2, total - 3, total - 1}) {
        const Checkpoint ckpt = cutAt(prog, cut);
        EXPECT_EQ(continueFrom(ckpt, UINT64_MAX, true), full)
            << "post-SMC fast continuation diverged at cut " << cut;
        EXPECT_EQ(continueFrom(ckpt, UINT64_MAX, false), full)
            << "post-SMC reference continuation diverged at cut "
            << cut;
    }
}

TEST(Checkpoint, MidStdinCutPreservesReadPosition)
{
    // Two read(2) calls drain a 8-byte stdin buffer in halves; a cut
    // between them must carry the buffer *and* the read position, or
    // the second read replays the first half. The guest sums all the
    // bytes it read and exits with the sum, so any replay or loss
    // changes the exit code.
    const Program assembled = assemble(R"(
        li s0, 0
        la a1, buf
        li a7, 63
        li a0, 0
        li a2, 4
        ecall
        add s0, s0, a0
        li a7, 63
        li a0, 0
        la a1, buf
        li a2, 4
        ecall
        add s0, s0, a0
        la t0, buf
        ld t1, 0(t0)
        add s0, s0, t1
        andi a0, s0, 255
        li a7, 93
        ecall
        .data
    buf:
        .dword 0
    )");
    Program prog = loadElf(buildElfImage(assembled));
    prog.stdinData = std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8);

    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    const uint64_t total = hart.runFast();
    ASSERT_TRUE(hart.exited());
    const EndState full = capture(hart, mem);

    // Every cut index: the interesting ones sit between the first
    // ecall (stdinPos = 4) and the second (stdinPos = 8).
    for (uint64_t cut = 1; cut < total; ++cut) {
        const Checkpoint ckpt = cutAt(prog, cut);
        EXPECT_EQ(continueFrom(ckpt, UINT64_MAX, true), full)
            << "mid-stdin fast continuation diverged at cut " << cut;
        EXPECT_EQ(continueFrom(ckpt, UINT64_MAX, false), full)
            << "mid-stdin reference continuation diverged at cut "
            << cut;
    }
}

TEST(Checkpoint, MidOutputCutPreservesCollectedBytes)
{
    // The write(2) output collected so far is part of the
    // architectural fingerprint (archChecksum hashes it); a cut
    // between two prints must carry the first print's bytes.
    const Program prog = assemble(R"(
        la a1, msg
        li a7, 64
        li a0, 1
        li a2, 3
        ecall
        la a1, msg2
        li a7, 64
        li a0, 1
        li a2, 3
        ecall
        li a0, 0
        li a7, 93
        ecall
        .data
    msg:
        .byte 102, 111, 111
    msg2:
        .byte 98, 97, 114
    )");

    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    const uint64_t total = hart.runFast();
    ASSERT_TRUE(hart.exited());
    ASSERT_EQ(hart.output(), "foobar");
    const EndState full = capture(hart, mem);

    for (uint64_t cut = 1; cut < total; ++cut) {
        const Checkpoint ckpt = cutAt(prog, cut);
        EXPECT_EQ(continueFrom(ckpt, UINT64_MAX, true), full)
            << "mid-output continuation diverged at cut " << cut;
    }
}

TEST(Checkpoint, RestoredIntervalMatchesDetailedSlice)
{
    // The harness-level contract the sampling layer uses: a detailed
    // (timed) run restored from a checkpoint commits exactly the
    // instructions the budget asks for, and its hart ends in the same
    // architectural state as the uninterrupted functional run of
    // cut + budget instructions.
    const Workload &workload = findWorkload("dijkstra");
    const Program prog = workload.program();
    const uint64_t cut = 25'000, window = 10'000;

    const Checkpoint ckpt = cutAt(prog, cut);
    const RunResult timed =
        runOne(workload, CoreParams::icelake(FusionMode::Helios),
               window, &ckpt, 0);
    EXPECT_TRUE(timed.sampled);
    EXPECT_EQ(timed.sampleStartInst, cut);
    EXPECT_EQ(timed.instructions, window);

    const EndState functional =
        runUninterrupted(prog, cut + window, true);
    EXPECT_EQ(timed.archChecksum, functional.arch);
    EXPECT_EQ(timed.memChecksum, functional.mem);
    EXPECT_EQ(timed.hartInstructions, functional.seq);
}
