/** @file Unit tests for opcode metadata and register naming. */

#include <gtest/gtest.h>

#include "isa/riscv.hh"

using namespace helios;

TEST(OpInfo, LoadMetadata)
{
    EXPECT_EQ(opInfo(Op::Ld).cls, OpClass::Load);
    EXPECT_EQ(opInfo(Op::Ld).memSize, 8);
    EXPECT_TRUE(opInfo(Op::Ld).memSigned);
    EXPECT_EQ(opInfo(Op::Lbu).memSize, 1);
    EXPECT_FALSE(opInfo(Op::Lbu).memSigned);
    EXPECT_TRUE(isLoadOp(Op::Lw));
    EXPECT_FALSE(isStoreOp(Op::Lw));
}

TEST(OpInfo, StoreMetadata)
{
    EXPECT_EQ(opInfo(Op::Sw).cls, OpClass::Store);
    EXPECT_EQ(opInfo(Op::Sw).memSize, 4);
    EXPECT_FALSE(opInfo(Op::Sw).writesRd);
    EXPECT_TRUE(opInfo(Op::Sw).readsRs2);
    EXPECT_TRUE(isMemOp(Op::Sb));
}

TEST(OpInfo, ControlClassification)
{
    EXPECT_TRUE(isControlOp(Op::Jal));
    EXPECT_TRUE(isControlOp(Op::Jalr));
    EXPECT_TRUE(isControlOp(Op::Beq));
    EXPECT_TRUE(isCondBranchOp(Op::Bgeu));
    EXPECT_FALSE(isCondBranchOp(Op::Jal));
    EXPECT_FALSE(isControlOp(Op::Add));
}

TEST(OpInfo, SerializingClassification)
{
    EXPECT_TRUE(isSerializingOp(Op::Fence));
    EXPECT_TRUE(isSerializingOp(Op::Ecall));
    EXPECT_TRUE(isSerializingOp(Op::Ebreak));
    EXPECT_FALSE(isSerializingOp(Op::Ld));
}

TEST(OpInfo, EveryOpcodeHasMnemonic)
{
    for (unsigned i = 1; i < unsigned(Op::NumOps); ++i) {
        const OpInfo &info = opInfo(static_cast<Op>(i));
        ASSERT_NE(info.mnemonic, nullptr);
        EXPECT_GT(std::string(info.mnemonic).size(), 0u);
        EXPECT_NE(info.cls, OpClass::Invalid)
            << "opcode " << i << " (" << info.mnemonic << ")";
    }
}

TEST(Registers, AbiNames)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(1), "ra");
    EXPECT_EQ(regName(2), "sp");
    EXPECT_EQ(regName(10), "a0");
    EXPECT_EQ(regName(31), "t6");
}

TEST(Registers, ParseNames)
{
    EXPECT_EQ(parseRegName("zero"), 0);
    EXPECT_EQ(parseRegName("x0"), 0);
    EXPECT_EQ(parseRegName("x31"), 31);
    EXPECT_EQ(parseRegName("t6"), 31);
    EXPECT_EQ(parseRegName("fp"), 8);
    EXPECT_EQ(parseRegName("s0"), 8);
    EXPECT_EQ(parseRegName("a7"), 17);
    EXPECT_EQ(parseRegName("bogus"), -1);
    EXPECT_EQ(parseRegName("x32"), -1);
}

TEST(Registers, RoundTripAll)
{
    for (unsigned i = 0; i < numArchRegs; ++i)
        EXPECT_EQ(parseRegName(regName(i)), int(i));
}
