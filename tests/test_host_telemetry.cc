/**
 * @file
 * Host telemetry contract: span tracer, metrics registry, and the
 * schema-v3 `host` report section.
 *
 * The load-bearing property is the observer effect — or rather its
 * absence: enabling the tracer and the metrics registry must change
 * no architectural result, cycle count or counter of any run. The
 * rest pins the export formats (Chrome trace_event JSON, Prometheus
 * text) and the report round-trip including v1/v2 backward
 * compatibility.
 *
 * HostTracer/HostMetrics enablement is sticky for the process (the
 * real consumers enable once and exit), so tests that rely on the
 * disabled state assert it up front and capture their baselines
 * before flipping the switches; ctest runs every test in its own
 * process, which keeps them independent.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "telemetry/host_metrics.hh"
#include "telemetry/host_trace.hh"
#include "workloads/workloads.hh"

using namespace helios;

namespace
{

constexpr uint64_t kBudget = 10'000;

std::vector<MatrixCell>
smallMatrix()
{
    std::vector<MatrixCell> cells;
    for (const char *name : {"crc32", "qsort"}) {
        const Workload &workload = findWorkload(name);
        for (FusionMode mode :
             {FusionMode::None, FusionMode::Helios})
            cells.emplace_back(workload, mode, kBudget);
    }
    return cells;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.archChecksum, b.archChecksum);
    EXPECT_EQ(a.memChecksum, b.memChecksum);
    EXPECT_EQ(a.stats.dump(), b.stats.dump())
        << a.workload << "/" << fusionModeName(a.mode);
}

} // namespace

// ---------------------------------------------------------------------
// Disabled behaviour (must run before anything calls enable())
// ---------------------------------------------------------------------

TEST(HostTelemetryDisabled, SpansRecordNothing)
{
    ASSERT_FALSE(HostTracer::global().enabled());
    ASSERT_FALSE(HostMetrics::global().enabled());
    {
        HostSpan span("idle-phase");
        span.arg("key", "value");
    }
    EXPECT_EQ(HostTracer::global().numSpans(), 0u);
    EXPECT_EQ(HostMetrics::global().toJson().at("phases").size(), 0u);
}

TEST(HostTelemetryDisabled, MatrixRecordsNothing)
{
    ASSERT_FALSE(HostTracer::global().enabled());
    ASSERT_FALSE(HostMetrics::global().enabled());
    ASSERT_EQ(runMatrix(smallMatrix(), 2).size(), 4u);
    EXPECT_EQ(HostTracer::global().numSpans(), 0u);
    EXPECT_EQ(HostMetrics::global().cellsCompleted(), 0u);
}

// ---------------------------------------------------------------------
// Enabled behaviour
// ---------------------------------------------------------------------

TEST(HostTrace, SpanRecordsNameCategoryAndArgs)
{
    HostTracer::global().enable();
    HostTracer::global().clear();
    {
        HostSpan span("assemble", "frontend");
        span.arg("workload", "crc32");
    }
    { HostSpan unnamed_category("report-write"); }
    ASSERT_EQ(HostTracer::global().numSpans(), 2u);

    std::ostringstream out;
    HostTracer::global().writeChromeTrace(out);
    const JsonValue trace = JsonValue::parse(out.str());
    ASSERT_TRUE(trace.has("traceEvents"));

    const JsonValue &events = trace.at("traceEvents");
    bool saw_process_meta = false, saw_thread_meta = false;
    bool saw_assemble = false, saw_report = false;
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &event = events.at(i);
        const std::string ph = event.at("ph").asString();
        if (ph == "M") {
            if (event.at("name").asString() == "process_name")
                saw_process_meta = true;
            if (event.at("name").asString() == "thread_name")
                saw_thread_meta = true;
            continue;
        }
        EXPECT_EQ(ph, "X");
        EXPECT_TRUE(event.has("ts"));
        EXPECT_TRUE(event.has("dur"));
        if (event.at("name").asString() == "assemble") {
            saw_assemble = true;
            EXPECT_EQ(event.at("cat").asString(), "frontend");
            EXPECT_EQ(event.at("args").at("workload").asString(),
                      "crc32");
        }
        if (event.at("name").asString() == "report-write") {
            saw_report = true;
            // Category defaults to the span name.
            EXPECT_EQ(event.at("cat").asString(), "report-write");
        }
    }
    EXPECT_TRUE(saw_process_meta);
    EXPECT_TRUE(saw_thread_meta);
    EXPECT_TRUE(saw_assemble);
    EXPECT_TRUE(saw_report);
    HostTracer::global().clear();
}

TEST(HostTrace, EndIsIdempotent)
{
    HostTracer::global().enable();
    HostTracer::global().clear();
    HostSpan span("once");
    span.end();
    span.end();
    EXPECT_EQ(HostTracer::global().numSpans(), 1u);
    HostTracer::global().clear();
}

TEST(HostTrace, MatrixEmitsOneCellSpanPerCellAndChangesNoResult)
{
    // Telemetry-off baseline first — enablement is sticky, so it has
    // to be captured before the switches flip (same process).
    ASSERT_FALSE(HostTracer::global().enabled());
    ASSERT_FALSE(HostMetrics::global().enabled());
    const std::vector<MatrixCell> cells = smallMatrix();
    const std::vector<RunResult> baseline = runMatrix(cells, 2);

    HostTracer::global().enable();
    HostTracer::global().clear();
    HostMetrics::global().enable();
    HostMetrics::global().reset();

    const std::vector<RunResult> traced = runMatrix(cells, 2);

    // Bit-identical to the telemetry-off baseline.
    ASSERT_EQ(traced.size(), baseline.size());
    for (size_t i = 0; i < traced.size(); ++i)
        expectSameResult(traced[i], baseline[i]);

    // One "cell"-category span per cell, each naming its workload.
    std::ostringstream out;
    HostTracer::global().writeChromeTrace(out);
    const JsonValue trace = JsonValue::parse(out.str());
    size_t cell_spans = 0;
    for (size_t i = 0; i < trace.at("traceEvents").size(); ++i) {
        const JsonValue &event = trace.at("traceEvents").at(i);
        if (event.at("ph").asString() == "X" &&
            event.at("cat").asString() == "cell") {
            ++cell_spans;
            EXPECT_TRUE(event.has("args")) << event.dump();
            EXPECT_TRUE(event.at("args").has("workload"));
            EXPECT_TRUE(event.at("args").has("config"));
        }
    }
    EXPECT_EQ(cell_spans, cells.size());

    // The metrics registry saw every cell and all guest work.
    EXPECT_EQ(HostMetrics::global().cellsCompleted(), cells.size());
    uint64_t insts = 0, uops = 0;
    for (const RunResult &result : traced) {
        insts += result.instructions;
        uops += result.uops;
    }
    EXPECT_EQ(HostMetrics::global().guestInstructions(), insts);
    EXPECT_EQ(HostMetrics::global().guestUops(), uops);

    HostTracer::global().clear();
    HostMetrics::global().reset();
}

TEST(HostMetricsRegistry, PrometheusTextIsWellFormed)
{
    HostMetrics::global().enable();
    HostMetrics::global().reset();
    HostMetrics::global().addPhaseSeconds("detailed-sim", 1.25);
    HostMetrics::global().recordGuestWork(1000, 1100);
    HostMetrics::global().recordCellCompleted();

    const std::string text = HostMetrics::global().prometheusText();
    std::istringstream lines(text);
    std::string line;
    size_t samples = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty()) << text;
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                        line.rfind("# TYPE ", 0) == 0)
                << line;
            continue;
        }
        ++samples;
        EXPECT_EQ(line.compare(0, 7, "helios_"), 0) << line;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        char *end = nullptr;
        std::strtod(line.c_str() + space + 1, &end);
        EXPECT_EQ(*end, '\0') << line;
    }
    EXPECT_GE(samples, 9u) << text;

    EXPECT_NE(text.find("helios_phase_seconds{phase=\"detailed-sim\"} "
                        "1.25"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("helios_guest_instructions_total 1000"),
              std::string::npos);
    EXPECT_GT(HostMetrics::peakRssBytes(), 0u);
    HostMetrics::global().reset();
}

TEST(HostMetricsRegistry, JsonSectionCarriesBuildInfoAndCounters)
{
    HostMetrics::global().enable();
    HostMetrics::global().reset();
    HostMetrics::global().addPhaseSeconds("cell", 0.5);
    HostMetrics::global().recordGuestWork(42, 64);

    const JsonValue host = HostMetrics::global().toJson();
    EXPECT_EQ(host.at("build").at("git_hash").asString(),
              buildInfo().gitHash);
    EXPECT_FALSE(host.at("build").at("compiler").asString().empty());
    EXPECT_GT(host.at("peak_rss_bytes").asUint(), 0u);
    EXPECT_GT(host.at("wall_seconds").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(host.at("phases").at("cell").asDouble(), 0.5);
    EXPECT_EQ(host.at("guest_instructions").asUint(), 42u);
    EXPECT_EQ(host.at("guest_uops").asUint(), 64u);
    HostMetrics::global().reset();
}

// ---------------------------------------------------------------------
// Schema v3: the `host` report section
// ---------------------------------------------------------------------

namespace
{

RunReportFile
reportWithOneRun()
{
    const Workload &workload = findWorkload("crc32");
    RunReportFile file;
    file.generator = "test_host_telemetry";
    file.add(runOne(workload, FusionMode::Helios, kBudget), kBudget);
    return file;
}

} // namespace

TEST(ReportSchemaV3, HostSectionRoundTrips)
{
    HostMetrics::global().enable();
    HostMetrics::global().reset();
    HostMetrics::global().addPhaseSeconds("detailed-sim", 2.0);

    RunReportFile file = reportWithOneRun();
    EXPECT_TRUE(file.host.isNull());
    attachHostSection(file);
    ASSERT_FALSE(file.host.isNull());

    const JsonValue json = file.toJson();
    EXPECT_EQ(json.at("version").asUint(), kRunReportVersion);
    ASSERT_TRUE(json.has("host"));
    EXPECT_DOUBLE_EQ(
        json.at("host").at("phases").at("detailed-sim").asDouble(),
        2.0);

    const RunReportFile parsed =
        RunReportFile::fromJsonText(file.toJsonText());
    EXPECT_TRUE(parsed == file);
    EXPECT_FALSE(parsed.host.isNull());
    HostMetrics::global().reset();
}

TEST(ReportSchemaV3, HostSectionIsOptional)
{
    const RunReportFile file = reportWithOneRun();
    const JsonValue json = file.toJson();
    EXPECT_FALSE(json.has("host"));
    const RunReportFile parsed =
        RunReportFile::fromJsonText(file.toJsonText());
    EXPECT_TRUE(parsed == file);
}

TEST(ReportSchemaV3, OlderSchemaVersionsStillParse)
{
    // A v4 reader must accept v1, v2 and v3 files unchanged —
    // committed baselines (bench/baselines/) are v1 and must keep
    // loading.
    RunReportFile file = reportWithOneRun();
    JsonValue json = file.toJson();
    for (const uint64_t version :
         {uint64_t(1), uint64_t(2), uint64_t(3)}) {
        json.set("version", version);
        const RunReportFile parsed =
            RunReportFile::fromJsonText(json.dump(2));
        EXPECT_EQ(parsed.version, version);
        ASSERT_EQ(parsed.runs.size(), 1u);
        EXPECT_TRUE(parsed.runs[0] == file.runs[0]);
    }
}

TEST(ReportSchemaV3, NewerSchemaVersionIsRejected)
{
    RunReportFile file = reportWithOneRun();
    JsonValue json = file.toJson();
    json.set("version", uint64_t(kRunReportVersion + 1));
    EXPECT_THROW(RunReportFile::fromJsonText(json.dump(2)),
                 FatalError);
}
