/**
 * @file
 * ELF loader robustness: round-trip fidelity, directed malformed
 * images, and a seeded mutation fuzzer.
 *
 * The loader's contract is "valid static RV64IM executables load
 * bit-exactly; everything else dies with a clear FatalError" — no
 * crashes, no silent partial loads. The fuzzer hammers that second
 * half with truncations, bit flips and field overwrites; it runs in
 * the ASan/UBSan CI trees, so any out-of-bounds read in the parser
 * is caught even when it happens not to change behaviour.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "asm/program.hh"
#include "common/logging.hh"
#include "harness/elf_image.hh"
#include "sim/elf_loader.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"

using namespace helios;

namespace
{

/** A small kernel with text, initialized data and a store. */
constexpr const char *kKernelSource = R"(
        la t0, vals
        ld a0, 0(t0)
        ld t1, 8(t0)
        add a0, a0, t1
        sd a0, 16(t0)
        li a7, 93
        ecall
        .data
    vals:
        .dword 40, 2, 0
)";

std::vector<uint8_t>
kernelImage()
{
    return buildElfImage(assemble(kKernelSource));
}

/** Overwrite a little-endian field inside the image. */
void
poke(std::vector<uint8_t> &image, size_t offset, uint64_t value,
     unsigned size)
{
    ASSERT_LE(offset + size, image.size());
    for (unsigned i = 0; i < size; ++i)
        image[offset + i] = uint8_t(value >> (8 * i));
}

/** loadElf must reject the image with a message naming the defect. */
void
expectRejected(const std::vector<uint8_t> &image,
               const std::string &needle)
{
    try {
        loadElf(image);
        FAIL() << "image unexpectedly loaded (wanted error containing "
               << "'" << needle << "')";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "error message '" << error.what()
            << "' does not mention '" << needle << "'";
    }
}

/** Deterministic 64-bit LCG for the fuzzer (no host randomness). */
uint64_t
lcg(uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trip fidelity

TEST(ElfLoader, RoundTripPreservesProgramStructure)
{
    const Program direct = assemble(kKernelSource);
    const Program loaded = loadElf(buildElfImage(direct));

    EXPECT_EQ(loaded.textBase, direct.textBase);
    EXPECT_EQ(loaded.entry, direct.entry);
    ASSERT_EQ(loaded.code.size(), direct.code.size());
    EXPECT_EQ(loaded.code, direct.code);

    // The ELF path flips the program into Linux-ABI mode and stamps
    // the image fingerprint.
    EXPECT_TRUE(loaded.linuxAbi);
    EXPECT_FALSE(direct.linuxAbi);
    ASSERT_EQ(loaded.argv.size(), 1u);
    EXPECT_NE(loaded.sourceHash, 0u);
    EXPECT_GE(loaded.brkBase, loaded.imageEnd());
}

TEST(ElfLoader, RoundTripExecutesBitIdentically)
{
    const Program direct = assemble(kKernelSource);
    Program loaded = loadElf(buildElfImage(direct));

    // Force the loaded program back onto the bare-metal start
    // convention so the architectural end state must be bit-exact
    // against the directly assembled original.
    loaded.linuxAbi = false;
    loaded.argv.clear();
    loaded.stdinData.clear();

    Memory mem_a, mem_b;
    Hart a(mem_a), b(mem_b);
    a.reset(direct);
    b.reset(loaded);
    const uint64_t insts_a = a.run();
    const uint64_t insts_b = b.run();

    EXPECT_EQ(insts_a, insts_b);
    EXPECT_TRUE(a.exited());
    EXPECT_TRUE(b.exited());
    EXPECT_EQ(a.exitCode(), 42u);
    EXPECT_EQ(b.exitCode(), 42u);
    EXPECT_EQ(a.archChecksum(), b.archChecksum());
    EXPECT_EQ(mem_a.checksum(), mem_b.checksum());
}

// ---------------------------------------------------------------------
// Directed malformed images

TEST(ElfLoader, RejectsTinyImage)
{
    std::vector<uint8_t> image = kernelImage();
    image.resize(10);
    expectRejected(image, "too small");
}

TEST(ElfLoader, RejectsBadMagic)
{
    std::vector<uint8_t> image = kernelImage();
    image[0] = 0x7e;
    expectRejected(image, "bad magic");
}

TEST(ElfLoader, Rejects32BitClass)
{
    std::vector<uint8_t> image = kernelImage();
    image[4] = 1; // ELFCLASS32
    expectRejected(image, "not a 64-bit");
}

TEST(ElfLoader, RejectsBigEndian)
{
    std::vector<uint8_t> image = kernelImage();
    image[5] = 2; // ELFDATA2MSB
    expectRejected(image, "not little-endian");
}

TEST(ElfLoader, RejectsForeignMachine)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 18, 62, 2); // EM_X86_64
    expectRejected(image, "not RISC-V");
}

TEST(ElfLoader, RejectsPieWithLinkHint)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 16, 3, 2); // ET_DYN
    expectRejected(image, "-static");
}

TEST(ElfLoader, RejectsRelocatableObject)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 16, 1, 2); // ET_REL
    expectRejected(image, "relocatable");
}

TEST(ElfLoader, RejectsWrongPhentsize)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 54, 60, 2);
    expectRejected(image, "e_phentsize");
}

TEST(ElfLoader, RejectsZeroProgramHeaders)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 56, 0, 2);
    expectRejected(image, "no program headers");
}

TEST(ElfLoader, RejectsAbsurdProgramHeaderCount)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 56, 65, 2);
    expectRejected(image, "limit");
}

TEST(ElfLoader, RejectsTruncatedHeaderTable)
{
    std::vector<uint8_t> image = kernelImage();
    image.resize(100); // mid-phdr-table
    expectRejected(image, "runs past the image");
}

TEST(ElfLoader, RejectsMisalignedEntry)
{
    std::vector<uint8_t> image = kernelImage();
    const Program direct = assemble(kKernelSource);
    poke(image, 24, direct.entry + 2, 8);
    expectRejected(image, "not 4-byte aligned");
}

TEST(ElfLoader, RejectsEntryOutsideText)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 24, 0x10, 8);
    expectRejected(image, "outside the text segment");
}

TEST(ElfLoader, RejectsFileszBeyondMemsz)
{
    std::vector<uint8_t> image = kernelImage();
    // First phdr starts at 64; p_memsz at +40.
    poke(image, 64 + 40, 1, 8);
    expectRejected(image, "p_filesz");
}

TEST(ElfLoader, RejectsSegmentPastGuestLimit)
{
    std::vector<uint8_t> image = kernelImage();
    // Move the data segment (second phdr) beyond the 112 MiB image
    // window that precedes the stack/heap reservation.
    poke(image, 64 + 56 + 16, guestImageLimit + 0x1000, 8);
    expectRejected(image, "guest image limit");
}

TEST(ElfLoader, RejectsOverlappingSegments)
{
    std::vector<uint8_t> image = kernelImage();
    const Program direct = assemble(kKernelSource);
    // Park the data segment on top of the text segment.
    poke(image, 64 + 56 + 16, direct.textBase + 4, 8);
    expectRejected(image, "overlap");
}

TEST(ElfLoader, RejectsImageWithoutExecutableSegment)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 64 + 4, 4 | 2, 4); // text flags -> RW
    expectRejected(image, "no executable");
}

TEST(ElfLoader, RejectsMultipleExecutableSegments)
{
    std::vector<uint8_t> image = kernelImage();
    poke(image, 64 + 56 + 4, 4 | 1, 4); // data flags -> RX
    expectRejected(image, "multiple executable");
}

TEST(ElfLoader, RejectsMissingFileWithClearMessage)
{
    try {
        loadElfFile("/nonexistent/helios-test.elf");
        FAIL() << "missing file unexpectedly loaded";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("cannot open"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Seeded mutation fuzzing

TEST(ElfLoader, FuzzedImagesNeverCrashTheParser)
{
    const std::vector<uint8_t> base = kernelImage();
    uint64_t rng = 0x5eed5eed5eed5eedULL;

    size_t parsed = 0, rejected = 0, executed = 0;
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<uint8_t> image = base;

        // 1-3 mutations: truncate, flip a byte, or overwrite a
        // 64-bit field with an adversarial value.
        const unsigned mutations = 1 + lcg(rng) % 3;
        for (unsigned m = 0; m < mutations; ++m) {
            switch (lcg(rng) % 3) {
            case 0:
                image.resize(lcg(rng) % (base.size() + 1));
                break;
            case 1:
                if (!image.empty())
                    image[lcg(rng) % image.size()] ^=
                        uint8_t(1u << (lcg(rng) % 8));
                break;
            case 2:
                if (image.size() >= 8) {
                    static const uint64_t evil[] = {
                        0,          UINT64_MAX,
                        0x8000000000000000ULL,
                        0x7fffffffffffffffULL,
                        guestImageLimit,
                        guestImageLimit + 1,
                        0x10000,    0xfff};
                    const size_t off =
                        lcg(rng) % (image.size() - 7);
                    uint64_t value =
                        evil[lcg(rng) % (sizeof(evil) /
                                         sizeof(evil[0]))];
                    for (unsigned i = 0; i < 8; ++i)
                        image[off + i] = uint8_t(value >> (8 * i));
                }
                break;
            }
        }

        try {
            const Program prog = loadElf(image);
            ++parsed;

            // A surviving image must still be runnable without any
            // crash. Cap how much memory it may claim and how many
            // instructions it may execute; execution ending in an
            // exit, a budget stop or a FatalError are all fine.
            uint64_t mem_claim = prog.code.size() * 4;
            for (const Program::Segment &seg : prog.segments)
                mem_claim += seg.memSize ? seg.memSize
                                         : seg.bytes.size();
            if (mem_claim <= (4u << 20)) {
                try {
                    Memory mem;
                    Hart hart(mem);
                    hart.reset(prog);
                    hart.run(1000);
                    ++executed;
                } catch (const FatalError &) {
                    // e.g. an unsupported ecall from scrambled text
                }
            }
        } catch (const FatalError &) {
            ++rejected;
        }
    }

    // The corpus must actually exercise both outcomes.
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(parsed, 0u);
    EXPECT_EQ(parsed + rejected, 2000u);
    (void)executed;
}

// ---------------------------------------------------------------------
// Syscall shim edges reachable only through loaded binaries

TEST(ElfLoader, ReadSyscallPatchingTextInvalidatesBothEngines)
{
    // The guest read(2)s 4 bytes from stdin directly over its own
    // poison instruction; the replacement word is
    // `addi a0, zero, 42` (0x02a00513). Both engines must observe
    // the patch — the fast engine through the decoder-cache
    // invalidation the ecall shim triggers.
    const Program assembled = assemble(R"(
        li a7, 63
        li a0, 0
        la a1, patch
        li a2, 4
        ecall
    patch:
        li a0, 99
        li a7, 93
        ecall
    )");
    Program prog = loadElf(buildElfImage(assembled));
    prog.stdinData = std::string("\x13\x05\xa0\x02", 4);

    Memory mem_ref, mem_fast;
    Hart ref(mem_ref), fast(mem_fast);
    ref.reset(prog);
    fast.reset(prog);
    ref.run();
    fast.runFast();

    EXPECT_TRUE(ref.exited());
    EXPECT_EQ(ref.exitCode(), 42u);
    EXPECT_TRUE(fast.exited());
    EXPECT_EQ(fast.exitCode(), 42u);
    EXPECT_EQ(ref.archChecksum(), fast.archChecksum());
    EXPECT_EQ(mem_ref.checksum(), mem_fast.checksum());
}

TEST(ElfLoader, BrkBeyondGuestLimitDiesWithDiagnostic)
{
    const Program assembled = assemble(R"(
        li a7, 214
        li a0, 0x7100000
        ecall
        li a7, 93
        ecall
    )");
    Program prog = loadElf(buildElfImage(assembled));

    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    try {
        hart.run();
        FAIL() << "brk beyond the guest heap limit did not fail";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("guest heap limit"),
                  std::string::npos)
            << error.what();
    }
}
