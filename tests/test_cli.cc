/**
 * @file
 * helios_run command-line contract.
 *
 * The exit-status rules a scripted caller (CI, bench drivers) relies
 * on: output paths that cannot be opened for writing fail fast with
 * exit 2 — before the simulation runs — and never silently succeed;
 * a writable path produces the promised artifact and exit 0.
 *
 * Drives the real binary (HELIOS_RUN_BIN, injected by CMake) through
 * std::system.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json.hh"

using namespace helios;

namespace
{

/** Run helios_run on the dotprod example with @a args appended. */
int
runCli(const std::string &args)
{
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S +
                                " --max-insts 2000 " + args +
                                " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** A path no process can create: inside a missing directory. */
std::string
unwritablePath(const char *name)
{
    return tempPath("no-such-dir/") + name;
}

} // namespace

TEST(Cli, UnwritableReportPathExitsTwo)
{
    EXPECT_EQ(runCli("--report " + unwritablePath("r.json")), 2);
}

TEST(Cli, UnwritableTracePathExitsTwo)
{
    EXPECT_EQ(runCli("--trace " + unwritablePath("t.json")), 2);
}

TEST(Cli, UnwritableProfilePathExitsTwo)
{
    EXPECT_EQ(runCli("--profile " + unwritablePath("p.json")), 2);
}

TEST(Cli, WritableReportSucceeds)
{
    const std::string path = tempPath("cli_report.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--report " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("schema").asString(), "helios-run-report");
    std::remove(path.c_str());
}

TEST(Cli, ProfileWritesSchemaV2WithProfileSection)
{
    const std::string path = tempPath("cli_profile.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--profile " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("version").asUint(), 2u);
    ASSERT_GT(report.at("runs").size(), 0u);
    EXPECT_TRUE(report.at("runs").at(0).has("profile"));
    std::remove(path.c_str());
}

TEST(Cli, UnknownOptionExitsTwo)
{
    EXPECT_EQ(runCli("--no-such-flag"), 2);
}

namespace
{

/** Run helios_run with @a args, capturing stdout into @a out. */
int
runCliCapture(const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_stdout.txt");
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S + " --max-insts 2000 " +
                                args + " > " + path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

} // namespace

TEST(Cli, TimeFlagPrintsSimulationSpeedLine)
{
    // One fixed-format line: wall seconds, host-MHz-equivalent
    // (simulated cycles per host second), simulated µops per second.
    std::string out;
    ASSERT_EQ(runCliCapture("--time", out), 0);
    double seconds = 0, mhz = 0, muops = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf MHz-equivalent, "
                          "%lf Muops/s",
                          &seconds, &mhz, &muops),
              3)
        << out;
    EXPECT_GE(seconds, 0.0);
    // A 2000-instruction run cannot take zero cycles or µops, so the
    // rates are positive whenever the clock resolved at all.
    if (seconds > 0) {
        EXPECT_GT(mhz, 0.0);
        EXPECT_GT(muops, 0.0);
    }
}

TEST(Cli, TimeFlagWorksWithSweep)
{
    std::string out;
    ASSERT_EQ(runCliCapture("--sweep --time --jobs 1", out), 0);
    EXPECT_NE(out.find("time: "), std::string::npos) << out;
}

TEST(Cli, TimeFlagWorksWithFunctional)
{
    // Functional mode has no cycles, so the line reports wall time
    // and retired instructions per second instead.
    std::string out;
    ASSERT_EQ(runCliCapture("--functional --time", out), 0);
    double seconds = 0, minst = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf Minst/s (functional)",
                          &seconds, &minst),
              2)
        << out;
    EXPECT_GE(seconds, 0.0);
    if (seconds > 0)
        EXPECT_GT(minst, 0.0);
}

TEST(Cli, TimeFlagWorksWithFunctionalReferenceEngine)
{
    std::string out;
    ASSERT_EQ(
        runCliCapture("--functional --engine reference --time", out),
        0);
    EXPECT_NE(out.find("Minst/s (functional)"), std::string::npos)
        << out;
}
