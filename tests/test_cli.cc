/**
 * @file
 * helios_run command-line contract.
 *
 * The exit-status rules a scripted caller (CI, bench drivers) relies
 * on: output paths that cannot be opened for writing fail fast with
 * exit 2 — before the simulation runs — and never silently succeed;
 * a writable path produces the promised artifact and exit 0.
 *
 * Drives the real binary (HELIOS_RUN_BIN, injected by CMake) through
 * std::system.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json.hh"

using namespace helios;

namespace
{

/** Run helios_run on the dotprod example with @a args appended. */
int
runCli(const std::string &args)
{
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S +
                                " --max-insts 2000 " + args +
                                " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** A path no process can create: inside a missing directory. */
std::string
unwritablePath(const char *name)
{
    return tempPath("no-such-dir/") + name;
}

} // namespace

TEST(Cli, UnwritableReportPathExitsTwo)
{
    EXPECT_EQ(runCli("--report " + unwritablePath("r.json")), 2);
}

TEST(Cli, UnwritableTracePathExitsTwo)
{
    EXPECT_EQ(runCli("--trace " + unwritablePath("t.json")), 2);
}

TEST(Cli, UnwritableProfilePathExitsTwo)
{
    EXPECT_EQ(runCli("--profile " + unwritablePath("p.json")), 2);
}

TEST(Cli, WritableReportSucceeds)
{
    const std::string path = tempPath("cli_report.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--report " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("schema").asString(), "helios-run-report");
    std::remove(path.c_str());
}

TEST(Cli, ProfileWritesSchemaV2WithProfileSection)
{
    const std::string path = tempPath("cli_profile.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--profile " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("version").asUint(), 2u);
    ASSERT_GT(report.at("runs").size(), 0u);
    EXPECT_TRUE(report.at("runs").at(0).has("profile"));
    std::remove(path.c_str());
}

TEST(Cli, UnknownOptionExitsTwo)
{
    EXPECT_EQ(runCli("--no-such-flag"), 2);
}
