/**
 * @file
 * Command-line contracts of the report tool chain.
 *
 * The exit-status rules a scripted caller (CI, bench drivers) relies
 * on: output paths that cannot be opened for writing fail fast with
 * exit 2 — before the simulation runs — and never silently succeed;
 * a writable path produces the promised artifact and exit 0. The same
 * contract is pinned for compare_reports (0 clean / 1 regression /
 * 2 usage or file error) and helios_annotate (0 ok / 1 malformed
 * input / 2 usage or unwritable --out), and the host-telemetry flags
 * (--log-level/--log-json/--host-trace/--metrics) are checked to be
 * pure observers: they change no simulated number.
 *
 * Drives the real binaries (HELIOS_RUN_BIN, COMPARE_REPORTS_BIN,
 * HELIOS_ANNOTATE_BIN, injected by CMake) through std::system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json.hh"
#include "harness/run_report.hh"

using namespace helios;

namespace
{

/** Run helios_run on the dotprod example with @a args appended. */
int
runCli(const std::string &args)
{
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S +
                                " --max-insts 2000 " + args +
                                " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** A path no process can create: inside a missing directory. */
std::string
unwritablePath(const char *name)
{
    return tempPath("no-such-dir/") + name;
}

} // namespace

TEST(Cli, UnwritableReportPathExitsTwo)
{
    EXPECT_EQ(runCli("--report " + unwritablePath("r.json")), 2);
}

TEST(Cli, UnwritableTracePathExitsTwo)
{
    EXPECT_EQ(runCli("--trace " + unwritablePath("t.json")), 2);
}

TEST(Cli, UnwritableProfilePathExitsTwo)
{
    EXPECT_EQ(runCli("--profile " + unwritablePath("p.json")), 2);
}

TEST(Cli, WritableReportSucceeds)
{
    const std::string path = tempPath("cli_report.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--report " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("schema").asString(), "helios-run-report");
    std::remove(path.c_str());
}

TEST(Cli, ProfileWritesReportWithProfileSection)
{
    const std::string path = tempPath("cli_profile.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--profile " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("version").asUint(), kRunReportVersion);
    ASSERT_GT(report.at("runs").size(), 0u);
    EXPECT_TRUE(report.at("runs").at(0).has("profile"));
    std::remove(path.c_str());
}

TEST(Cli, UnknownOptionExitsTwo)
{
    EXPECT_EQ(runCli("--no-such-flag"), 2);
}

namespace
{

/** Run helios_run with @a args, capturing stdout into @a out. */
int
runCliCapture(const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_stdout.txt");
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S + " --max-insts 2000 " +
                                args + " > " + path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

} // namespace

TEST(Cli, TimeFlagPrintsSimulationSpeedLine)
{
    // One fixed-format line: wall seconds, host-MHz-equivalent
    // (simulated cycles per host second), simulated µops per second.
    std::string out;
    ASSERT_EQ(runCliCapture("--time", out), 0);
    double seconds = 0, mhz = 0, muops = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf MHz-equivalent, "
                          "%lf Muops/s",
                          &seconds, &mhz, &muops),
              3)
        << out;
    EXPECT_GE(seconds, 0.0);
    // A 2000-instruction run cannot take zero cycles or µops, so the
    // rates are positive whenever the clock resolved at all.
    if (seconds > 0) {
        EXPECT_GT(mhz, 0.0);
        EXPECT_GT(muops, 0.0);
    }
}

TEST(Cli, TimeFlagWorksWithSweep)
{
    std::string out;
    ASSERT_EQ(runCliCapture("--sweep --time --jobs 1", out), 0);
    EXPECT_NE(out.find("time: "), std::string::npos) << out;
}

TEST(Cli, TimeFlagWorksWithFunctional)
{
    // Functional mode has no cycles, so the line reports wall time
    // and retired instructions per second instead.
    std::string out;
    ASSERT_EQ(runCliCapture("--functional --time", out), 0);
    double seconds = 0, minst = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf Minst/s (functional)",
                          &seconds, &minst),
              2)
        << out;
    EXPECT_GE(seconds, 0.0);
    if (seconds > 0)
        EXPECT_GT(minst, 0.0);
}

TEST(Cli, TimeFlagWorksWithFunctionalReferenceEngine)
{
    std::string out;
    ASSERT_EQ(
        runCliCapture("--functional --engine reference --time", out),
        0);
    EXPECT_NE(out.find("Minst/s (functional)"), std::string::npos)
        << out;
}

// ---------------------------------------------------------------------
// Real-binary (--elf) frontend

namespace
{

/** Run helios_run with a raw argument string (no implicit input). */
int
runRaw(const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_raw_stdout.txt");
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                args + " > " + path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

/** Emit an ELF image for a tiny exit-with-7 kernel; returns its path. */
std::string
makeExitSevenElf()
{
    const std::string asm_path = tempPath("cli_exit7.s");
    const std::string elf_path = tempPath("cli_exit7.elf");
    {
        std::ofstream out(asm_path);
        out << "li a0, 7\nli a7, 93\necall\n";
    }
    std::string text;
    EXPECT_EQ(runRaw(asm_path + " --emit-elf " + elf_path, text), 0)
        << text;
    return elf_path;
}

} // namespace

TEST(Cli, ElfMissingFileExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw("--elf " + unwritablePath("missing.elf"), out),
              2);
    EXPECT_NE(out.find("cannot open"), std::string::npos) << out;
}

TEST(Cli, ElfConflictsWithAssemblyInputExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw(std::string(DOTPROD_S) + " --elf whatever.elf",
                     out),
              2);
    EXPECT_NE(out.find("conflicts"), std::string::npos) << out;
}

TEST(Cli, ArgvWithoutElfExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw(std::string(DOTPROD_S) + " --argv x y", out), 2);
    EXPECT_NE(out.find("--elf"), std::string::npos) << out;
}

TEST(Cli, MalformedElfExitsOne)
{
    const std::string path = tempPath("cli_garbage.elf");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not an ELF image at all................";
    }
    std::string out;
    EXPECT_EQ(runRaw("--elf " + path, out), 1);
    EXPECT_NE(out.find("ELF"), std::string::npos) << out;
    std::remove(path.c_str());
}

TEST(Cli, EmitElfThenRunPropagatesGuestExitCode)
{
    const std::string elf_path = makeExitSevenElf();
    std::string out;
    EXPECT_EQ(runRaw("--elf " + elf_path + " --functional", out), 7)
        << out;
    EXPECT_NE(out.find("exit code (a0): 7"), std::string::npos) << out;
    // The frontend banner names the image and its fingerprint.
    EXPECT_NE(out.find("elf: "), std::string::npos) << out;
    EXPECT_NE(out.find("hash 0x"), std::string::npos) << out;
    std::remove(elf_path.c_str());
}

TEST(Cli, ElfTimingRunAlsoPropagatesExitCode)
{
    const std::string elf_path = makeExitSevenElf();
    std::string out;
    EXPECT_EQ(runRaw("--elf " + elf_path + " --config Helios", out),
              7)
        << out;
    std::remove(elf_path.c_str());
}

// ---------------------------------------------------------------------
// Host telemetry flags (--log-level/--log-json/--host-trace/--metrics)

namespace
{

/** Read a whole file into a string; empty when unreadable. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

} // namespace

TEST(CliTelemetry, BadLogLevelExitsTwo)
{
    EXPECT_EQ(runCli("--log-level shouting"), 2);
}

TEST(CliTelemetry, UnwritableTelemetryPathsExitTwo)
{
    EXPECT_EQ(runCli("--log-json " + unwritablePath("l.jsonl")), 2);
    EXPECT_EQ(runCli("--host-trace " + unwritablePath("t.json")), 2);
    EXPECT_EQ(runCli("--metrics " + unwritablePath("m.prom")), 2);
}

TEST(CliTelemetry, HostTraceIsWellFormedChromeTrace)
{
    const std::string path = tempPath("cli_host_trace.json");
    std::remove(path.c_str());
    ASSERT_EQ(runCli("--host-trace " + path), 0);

    const JsonValue trace = JsonValue::parse(slurp(path));
    ASSERT_TRUE(trace.has("traceEvents"));
    bool saw_sim_span = false;
    for (size_t i = 0; i < trace.at("traceEvents").size(); ++i) {
        const JsonValue &event = trace.at("traceEvents").at(i);
        if (event.at("ph").asString() == "X" &&
            event.at("name").asString() == "detailed-sim")
            saw_sim_span = true;
    }
    EXPECT_TRUE(saw_sim_span) << slurp(path);
    std::remove(path.c_str());
}

TEST(CliTelemetry, MetricsFileIsWellFormedPrometheusText)
{
    const std::string path = tempPath("cli_metrics.prom");
    std::remove(path.c_str());
    ASSERT_EQ(runCli("--metrics " + path), 0);

    const std::string text = slurp(path);
    EXPECT_NE(text.find("helios_build_info{"), std::string::npos);
    EXPECT_NE(text.find("helios_peak_rss_bytes "), std::string::npos);
    EXPECT_NE(text.find("helios_guest_instructions_total "),
              std::string::npos);
    // Every line is a comment or "name[{labels}] value".
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_EQ(line.compare(0, 7, "helios_"), 0) << line;
        char *end = nullptr;
        std::strtod(line.c_str() + space + 1, &end);
        EXPECT_EQ(*end, '\0') << line;
    }
    std::remove(path.c_str());
}

TEST(CliTelemetry, JsonLogSinkEmitsParsableRecords)
{
    const std::string path = tempPath("cli_log.jsonl");
    std::remove(path.c_str());
    ASSERT_EQ(runCli("--log-level trace --log-json " + path +
                     " --sweep --jobs 2"),
              0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    size_t records = 0;
    while (std::getline(in, line)) {
        const JsonValue record = JsonValue::parse(line);
        EXPECT_TRUE(record.has("ts")) << line;
        EXPECT_TRUE(record.has("level")) << line;
        EXPECT_TRUE(record.has("msg")) << line;
        EXPECT_TRUE(record.has("thread")) << line;
        ++records;
    }
    EXPECT_GT(records, 0u);
    std::remove(path.c_str());
}

TEST(CliTelemetry, TelemetryChangesNoTimingResult)
{
    // The determinism guard for the whole host-telemetry stack: a
    // sweep with every flag armed must produce bit-identical runs and
    // verdicts; only the (additive, host-only) extras may differ.
    const std::string plain_path = tempPath("cli_det_plain.json");
    const std::string telem_path = tempPath("cli_det_telem.json");
    ASSERT_EQ(runCli("--sweep --jobs 2 --report " + plain_path), 0);
    ASSERT_EQ(runCli("--sweep --jobs 2 --report " + telem_path +
                     " --log-level trace --log-json " +
                     tempPath("cli_det.jsonl") + " --host-trace " +
                     tempPath("cli_det_trace.json") + " --metrics " +
                     tempPath("cli_det.prom")),
              0);

    const RunReportFile plain = RunReportFile::load(plain_path);
    const RunReportFile telem = RunReportFile::load(telem_path);
    EXPECT_EQ(telem.version, kRunReportVersion);
    EXPECT_TRUE(plain.host.isNull());
    EXPECT_FALSE(telem.host.isNull());
    EXPECT_TRUE(plain.runs == telem.runs);
    EXPECT_TRUE(plain.verdicts == telem.verdicts);

    for (const char *name : {"cli_det_plain.json", "cli_det_telem.json",
                             "cli_det.jsonl", "cli_det_trace.json",
                             "cli_det.prom"})
        std::remove(tempPath(name).c_str());
}

TEST(CliTelemetry, TelemetryChangesNoFunctionalResult)
{
    // Both functional engines, with and without telemetry: identical
    // instruction count and guest-visible result lines.
    for (const char *engine : {"fast", "reference"}) {
        std::string plain, telem;
        ASSERT_EQ(runCliCapture(std::string("--functional --engine ") +
                                    engine,
                                plain),
                  0);
        ASSERT_EQ(runCliCapture(std::string("--functional --engine ") +
                                    engine +
                                    " --log-level trace --host-trace " +
                                    tempPath("cli_det_func.json") +
                                    " --metrics " +
                                    tempPath("cli_det_func.prom"),
                                telem),
                  0);
        unsigned long long plain_insts = 0, telem_insts = 0;
        ASSERT_EQ(std::sscanf(std::strstr(plain.c_str(), "functional:"),
                              "functional: %llu", &plain_insts),
                  1)
            << plain;
        ASSERT_EQ(std::sscanf(std::strstr(telem.c_str(), "functional:"),
                              "functional: %llu", &telem_insts),
                  1)
            << telem;
        EXPECT_EQ(plain_insts, telem_insts) << engine;
        EXPECT_EQ(plain.find("exit code") != std::string::npos,
                  telem.find("exit code") != std::string::npos);
    }
    std::remove(tempPath("cli_det_func.json").c_str());
    std::remove(tempPath("cli_det_func.prom").c_str());
}

// ---------------------------------------------------------------------
// compare_reports exit-status contract (0 clean / 1 regression /
// 2 usage or file error)

namespace
{

/** Run an arbitrary tool binary with @a args, capturing all output. */
int
runTool(const char *bin, const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_tool_stdout.txt");
    const std::string command = std::string(bin) + " " + args + " > " +
                                path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    out = slurp(path);
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

/** Write @a text to a temp file named @a name; returns the path. */
std::string
writeTemp(const char *name, const std::string &text)
{
    const std::string path = tempPath(name);
    std::ofstream out(path);
    out << text;
    return path;
}

} // namespace

TEST(CompareReports, MissingArgumentsExitTwo)
{
    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN, "", out), 2);
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN, "only_one.json", out), 2);
}

TEST(CompareReports, UnknownOptionExitsTwo)
{
    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN,
                      "a.json b.json --frobnicate", out),
              2);
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST(CompareReports, MissingFileExitsTwo)
{
    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN,
                      unwritablePath("base.json") + " " +
                          unwritablePath("cur.json"),
                      out),
              2);
    EXPECT_NE(out.find("compare_reports:"), std::string::npos) << out;
}

TEST(CompareReports, MalformedJsonExitsTwo)
{
    const std::string path =
        writeTemp("cli_broken.json", "{\"runs\": [");
    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN, path + " " + path, out), 2);
    EXPECT_NE(out.find("compare_reports:"), std::string::npos) << out;
    std::remove(path.c_str());
}

TEST(CompareReports, SelfCompareIsCleanAndIgnoresHostSection)
{
    // Two reports of the same run, one carrying a host section: the
    // host data describes the producing machine, not the simulation,
    // so the comparison must be clean.
    const std::string plain_path = tempPath("cli_cmp_plain.json");
    const std::string telem_path = tempPath("cli_cmp_telem.json");
    ASSERT_EQ(runCli("--report " + plain_path), 0);
    ASSERT_EQ(runCli("--report " + telem_path + " --metrics " +
                     tempPath("cli_cmp.prom")),
              0);

    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN,
                      plain_path + " " + telem_path, out),
              0)
        << out;
    EXPECT_NE(out.find("0 regression(s)"), std::string::npos) << out;

    std::remove(plain_path.c_str());
    std::remove(telem_path.c_str());
    std::remove(tempPath("cli_cmp.prom").c_str());
}

// ---------------------------------------------------------------------
// helios_annotate exit-status contract (0 ok / 1 malformed input /
// 2 usage or unwritable --out)

TEST(Annotate, MissingArgumentsExitTwo)
{
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN, "", out), 2);
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN, "only_report.json", out), 2);
}

TEST(Annotate, UnknownOptionExitsTwo)
{
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      std::string("r.json p.s --frobnicate"), out),
              2);
    EXPECT_NE(out.find("unknown option"), std::string::npos) << out;
}

TEST(Annotate, MissingReportExitsOne)
{
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      unwritablePath("r.json") + " " + DOTPROD_S, out),
              1);
    EXPECT_NE(out.find("helios_annotate:"), std::string::npos) << out;
}

TEST(Annotate, MalformedJsonExitsOne)
{
    const std::string path =
        writeTemp("cli_ann_broken.json", "not json at all");
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      path + " " + DOTPROD_S, out),
              1);
    std::remove(path.c_str());
}

TEST(Annotate, UnprofiledReportExitsOne)
{
    const std::string report_path = tempPath("cli_ann_plain.json");
    ASSERT_EQ(runCli("--report " + report_path), 0);
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      report_path + " " + DOTPROD_S, out),
              1);
    EXPECT_NE(out.find("--profile"), std::string::npos) << out;
    std::remove(report_path.c_str());
}

TEST(Annotate, UnwritableOutExitsTwo)
{
    const std::string report_path = tempPath("cli_ann_prof.json");
    ASSERT_EQ(runCli("--profile " + report_path), 0);
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      report_path + " " + DOTPROD_S + " --out " +
                          unwritablePath("a.txt"),
                      out),
              2);
    EXPECT_NE(out.find("cannot write"), std::string::npos) << out;
    std::remove(report_path.c_str());
}

TEST(Annotate, ProfiledReportAnnotatesCleanly)
{
    const std::string report_path = tempPath("cli_ann_ok.json");
    ASSERT_EQ(runCli("--profile " + report_path), 0);
    std::string out;
    EXPECT_EQ(runTool(HELIOS_ANNOTATE_BIN,
                      report_path + " " + DOTPROD_S, out),
              0)
        << out;
    std::remove(report_path.c_str());
}

TEST(Cli, ElfSweepReportRecordsProgramHash)
{
    const std::string elf_path = makeExitSevenElf();
    const std::string report_path = tempPath("cli_elf_report.json");
    std::remove(report_path.c_str());

    std::string out;
    // --sweep compares configurations; it must not propagate the
    // guest exit code, so a clean sweep exits 0.
    EXPECT_EQ(runRaw("--elf " + elf_path + " --sweep --jobs 1 "
                     "--report " + report_path,
                     out),
              0)
        << out;

    std::ifstream in(report_path);
    ASSERT_TRUE(in.good()) << report_path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    ASSERT_GT(report.at("runs").size(), 0u);
    for (size_t i = 0; i < report.at("runs").size(); ++i) {
        const JsonValue &run = report.at("runs").at(i);
        ASSERT_TRUE(run.has("program_hash"));
        EXPECT_NE(run.at("program_hash").asUint(), 0u);
        EXPECT_EQ(run.at("exit_code").asUint(), 7u);
    }
    std::remove(report_path.c_str());
    std::remove(elf_path.c_str());
}

// ---------------------------------------------------------------------
// Run ledger (--ledger / HELIOS_LEDGER) and helios_db

namespace
{

/** Fresh ledger directory under the test temp dir. */
std::string
ledgerDir(const char *name)
{
    const std::string dir = tempPath(name);
    std::system(("rm -rf " + dir).c_str());
    return dir;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Copy @a report_path with runs[0]'s ipc scaled by @a factor —
 *  the injected regression the trend/diff gates must catch. */
std::string
withScaledIpc(const std::string &report_path, double factor,
              const char *name)
{
    JsonValue json = JsonValue::parse(readWholeFile(report_path));
    JsonValue run = json.at("runs").at(size_t(0));
    run.set("ipc", JsonValue(run.at("ipc").asDouble() * factor));
    JsonValue runs = JsonValue::array();
    runs.push(run);
    for (size_t i = 1; i < json.at("runs").size(); ++i)
        runs.push(json.at("runs").at(i));
    json.set("runs", runs);
    return writeTemp(name, json.dump(2));
}

} // namespace

TEST(CompareReports, InjectedIpcRegressionExitsOne)
{
    const std::string base_path = tempPath("cli_reg_base.json");
    ASSERT_EQ(runCli("--report " + base_path), 0);
    const std::string bad_path =
        withScaledIpc(base_path, 0.8, "cli_reg_bad.json");

    std::string out;
    EXPECT_EQ(runTool(COMPARE_REPORTS_BIN, base_path + " " + bad_path,
                      out),
              1)
        << out;
    EXPECT_NE(out.find("IPC"), std::string::npos) << out;
    EXPECT_NE(out.find("1 regression(s)"), std::string::npos) << out;

    std::remove(base_path.c_str());
    std::remove(bad_path.c_str());
}

TEST(CliLedger, BackToBackRunsRecordThenHit)
{
    const std::string dir = ledgerDir("cli_ledger_hit");

    std::string out;
    ASSERT_EQ(runRaw(std::string(DOTPROD_S) +
                         " --max-insts 2000 --ledger " + dir,
                     out),
              0);
    EXPECT_NE(out.find("ledger: recorded 1 run"), std::string::npos)
        << out;

    ASSERT_EQ(runRaw(std::string(DOTPROD_S) +
                         " --max-insts 2000 --ledger " + dir,
                     out),
              0);
    EXPECT_NE(out.find("ledger: hit"), std::string::npos) << out;

    // Identical back-to-back runs leave exactly one index record.
    const std::string index = readWholeFile(dir + "/index.jsonl");
    EXPECT_EQ(std::count(index.begin(), index.end(), '\n'), 1) << index;

    std::system(("rm -rf " + dir).c_str());
}

TEST(CliLedger, EnvVarArmsTheLedger)
{
    const std::string dir = ledgerDir("cli_ledger_env");
    setenv("HELIOS_LEDGER", dir.c_str(), 1);
    std::string out;
    const int status = runRaw(
        std::string(DOTPROD_S) + " --max-insts 2000", out);
    unsetenv("HELIOS_LEDGER");
    ASSERT_EQ(status, 0);
    EXPECT_NE(out.find("ledger: recorded 1 run"), std::string::npos)
        << out;
    std::system(("rm -rf " + dir).c_str());
}

TEST(CliLedger, LedgerChangesNoTimingResult)
{
    // Observer-effect guard at the CLI level: a run recorded into a
    // ledger must produce a byte-identical report (host section
    // aside, which neither run carries here).
    const std::string dir = ledgerDir("cli_ledger_pure");
    const std::string plain_path = tempPath("cli_ledger_plain.json");
    const std::string armed_path = tempPath("cli_ledger_armed.json");
    ASSERT_EQ(runCli("--report " + plain_path), 0);
    ASSERT_EQ(runCli("--report " + armed_path + " --ledger " + dir),
              0);
    EXPECT_EQ(readWholeFile(plain_path), readWholeFile(armed_path));
    std::remove(plain_path.c_str());
    std::remove(armed_path.c_str());
    std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------
// Sampled simulation flags (--sample/--interval/--warmup/
// --checkpoint-dir): usage errors exit 2 before anything runs; the
// trace/profile conflict is a runtime fatal (exit 1); a good spec
// prints the estimate line and writes a schema-v5 report.

TEST(CliSampling, ZeroIntervalExitsTwo)
{
    EXPECT_EQ(runCli("--sample 4 --interval 0"), 2);
}

TEST(CliSampling, NegativeIntervalExitsTwo)
{
    EXPECT_EQ(runCli("--sample 4 --interval -5"), 2);
    EXPECT_EQ(runCli("--sample -1"), 2);
}

TEST(CliSampling, WarmupNotShorterThanIntervalExitsTwo)
{
    EXPECT_EQ(runCli("--sample 2 --interval 500 --warmup 500"), 2);
    EXPECT_EQ(runCli("--sample 2 --interval 500 --warmup 600"), 2);
}

TEST(CliSampling, FrameTooSmallForWindowsExitsTwo)
{
    // budget 2000 / 4 samples = 500 stride < 100 + 900 window.
    EXPECT_EQ(runCli("--sample 4 --interval 900 --warmup 100"), 2);
}

TEST(CliSampling, SampleWithFunctionalExitsTwo)
{
    std::string out;
    EXPECT_EQ(runCliCapture("--sample 2 --interval 500 --warmup 100 "
                            "--functional",
                            out),
              2);
    EXPECT_NE(out.find("--functional"), std::string::npos) << out;
}

TEST(CliSampling, SampleWithoutMaxInstsExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw(std::string(DOTPROD_S) + " --sample 4", out), 2);
    EXPECT_NE(out.find("--max-insts"), std::string::npos) << out;
}

TEST(CliSampling, SamplingFlagsWithoutSampleExitTwo)
{
    EXPECT_EQ(runCli("--interval 500"), 2);
    EXPECT_EQ(runCli("--warmup 100"), 2);
    EXPECT_EQ(runCli("--checkpoint-dir " + tempPath("ckpt_orphan")), 2);
}

TEST(CliSampling, UnwritableCheckpointDirExitsTwo)
{
    // A path through a regular file cannot be created as a directory
    // no matter the privileges.
    const std::string file_path = writeTemp("cli_ckpt_file", "x");
    std::string out;
    EXPECT_EQ(runCliCapture("--sample 2 --interval 500 --warmup 100 "
                            "--checkpoint-dir " +
                                file_path + "/sub",
                            out),
              2);
    EXPECT_NE(out.find("--checkpoint-dir"), std::string::npos) << out;
    std::remove(file_path.c_str());
}

TEST(CliSampling, SampleConflictsWithWholeRunObserversExitsOne)
{
    // --trace and friends observe every committed instruction; a
    // sampled run only executes windows, so the combination is a
    // runtime fatal, not a silent partial trace.
    EXPECT_EQ(runCli("--sample 2 --interval 500 --warmup 100 --trace " +
                     tempPath("cli_sample_trace.json")),
              1);
    EXPECT_EQ(runCli("--sample 2 --interval 500 --warmup 100 "
                     "--profile " +
                     tempPath("cli_sample_prof.json")),
              1);
}

TEST(CliSampling, SampledRunPrintsEstimateAndWritesV5Report)
{
    const std::string report_path = tempPath("cli_sampled_report.json");
    std::remove(report_path.c_str());

    std::string out;
    ASSERT_EQ(runCliCapture("--sample 2 --interval 500 --warmup 100 "
                            "--report " +
                                report_path,
                            out),
              0)
        << out;
    EXPECT_NE(out.find("sampling: 2 checkpoint(s)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("sampled: "), std::string::npos) << out;
    EXPECT_NE(out.find("95% CI"), std::string::npos) << out;

    const JsonValue report = JsonValue::parse(slurp(report_path));
    EXPECT_EQ(report.at("version").asUint(), kRunReportVersion);
    ASSERT_GT(report.at("runs").size(), 0u);
    const JsonValue &run = report.at("runs").at(size_t(0));
    ASSERT_TRUE(run.has("sampled")) << report.dump(2);
    const JsonValue &sampled = run.at("sampled");
    EXPECT_EQ(sampled.at("spec").at("samples").asUint(), 2u);
    EXPECT_EQ(sampled.at("spec").at("interval").asUint(), 500u);
    EXPECT_EQ(sampled.at("ipc").at("samples").asUint(), 2u);
    std::remove(report_path.c_str());
}

TEST(CliSampling, SampledSweepReusesOneCheckpointSet)
{
    const std::string dir = tempPath("cli_sampled_sweep_ckpt");
    std::system(("rm -rf " + dir).c_str());

    std::string out;
    ASSERT_EQ(runCliCapture("--sweep --jobs 2 --sample 2 "
                            "--interval 500 --warmup 100 "
                            "--checkpoint-dir " +
                                dir,
                            out),
              0)
        << out;
    // One fast-forward serves all six configurations...
    EXPECT_NE(out.find("fast-forwarded"), std::string::npos) << out;
    EXPECT_NE(out.find("vs NoFusion"), std::string::npos) << out;

    // ...and a re-run reuses the persisted set.
    ASSERT_EQ(runCliCapture("--sample 2 --interval 500 --warmup 100 "
                            "--checkpoint-dir " +
                                dir,
                            out),
              0)
        << out;
    EXPECT_NE(out.find("reused from checkpoint dir"), std::string::npos)
        << out;
    std::system(("rm -rf " + dir).c_str());
}

TEST(HeliosDb, MissingArgumentsExitTwo)
{
    std::string out;
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "", out), 2);
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "frobnicate somewhere", out), 2);
    EXPECT_EQ(
        runTool(HELIOS_DB_BIN,
                "trend " + ledgerDir("cli_db_noargs"), out),
        2); // trend without --metric
}

TEST(HeliosDb, IngestTrendDiffGcWorkflow)
{
    // The full drift-observatory loop in miniature: seed a history
    // from one report under synthetic build names, inject an IPC
    // regression, and watch trend + diff flag it.
    const std::string dir = ledgerDir("cli_db_flow");
    const std::string report_path = tempPath("cli_db_report.json");
    ASSERT_EQ(runCli("--report " + report_path), 0);

    std::string out;
    for (const char *build : {"seed-1", "seed-2", "seed-3"}) {
        ASSERT_EQ(runTool(HELIOS_DB_BIN,
                          "ingest " + dir + " " + report_path +
                              " --build " + std::string(build),
                          out),
                  0)
            << out;
        EXPECT_NE(out.find("1 run(s) recorded"), std::string::npos)
            << out;
    }
    // Re-ingesting an existing build is a keyed hit, not a new point.
    ASSERT_EQ(runTool(HELIOS_DB_BIN,
                      "ingest " + dir + " " + report_path +
                          " --build seed-1",
                      out),
              0);
    EXPECT_NE(out.find("1 already present"), std::string::npos) << out;

    // Clean history: trend gate passes.
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "trend " + dir + " --metric ipc",
                      out),
              0)
        << out;
    EXPECT_NE(out.find("0 regression(s)"), std::string::npos) << out;

    // Inject a 20% IPC drop as build seed-4: trend gate fails.
    const std::string bad_path =
        withScaledIpc(report_path, 0.8, "cli_db_bad.json");
    ASSERT_EQ(runTool(HELIOS_DB_BIN,
                      "ingest " + dir + " " + bad_path +
                          " --build seed-4",
                      out),
              0);
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "trend " + dir + " --metric ipc",
                      out),
              1)
        << out;
    EXPECT_NE(out.find("TREND"), std::string::npos) << out;

    // list shows all four records.
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "list " + dir, out), 0);
    EXPECT_NE(out.find("4 record(s)"), std::string::npos) << out;

    // diff through the shared compare_reports core: clean pair exits
    // 0, regressing pair exits 1 with the same IPC spelling.
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "diff " + dir + " 0 1", out), 0)
        << out;
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "diff " + dir + " 0 3", out), 1)
        << out;
    EXPECT_NE(out.find("IPC"), std::string::npos) << out;

    // show prints the record's key and blob.
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "show " + dir + " 0", out), 0);
    EXPECT_NE(out.find("seed-1"), std::string::npos) << out;
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "show " + dir + " 99", out), 2);

    // gc cleans a planted orphan and keeps every referenced blob.
    std::ofstream(dir + "/blobs/orphan.json") << "leftover";
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "gc " + dir, out), 0);
    EXPECT_NE(out.find("removed 1 unreferenced"), std::string::npos)
        << out;
    EXPECT_EQ(runTool(HELIOS_DB_BIN, "diff " + dir + " 0 1", out), 0)
        << out;

    std::remove(report_path.c_str());
    std::remove(bad_path.c_str());
    std::system(("rm -rf " + dir).c_str());
}
