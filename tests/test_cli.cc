/**
 * @file
 * helios_run command-line contract.
 *
 * The exit-status rules a scripted caller (CI, bench drivers) relies
 * on: output paths that cannot be opened for writing fail fast with
 * exit 2 — before the simulation runs — and never silently succeed;
 * a writable path produces the promised artifact and exit 0.
 *
 * Drives the real binary (HELIOS_RUN_BIN, injected by CMake) through
 * std::system.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json.hh"

using namespace helios;

namespace
{

/** Run helios_run on the dotprod example with @a args appended. */
int
runCli(const std::string &args)
{
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S +
                                " --max-insts 2000 " + args +
                                " > /dev/null 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    return WEXITSTATUS(status);
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** A path no process can create: inside a missing directory. */
std::string
unwritablePath(const char *name)
{
    return tempPath("no-such-dir/") + name;
}

} // namespace

TEST(Cli, UnwritableReportPathExitsTwo)
{
    EXPECT_EQ(runCli("--report " + unwritablePath("r.json")), 2);
}

TEST(Cli, UnwritableTracePathExitsTwo)
{
    EXPECT_EQ(runCli("--trace " + unwritablePath("t.json")), 2);
}

TEST(Cli, UnwritableProfilePathExitsTwo)
{
    EXPECT_EQ(runCli("--profile " + unwritablePath("p.json")), 2);
}

TEST(Cli, WritableReportSucceeds)
{
    const std::string path = tempPath("cli_report.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--report " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("schema").asString(), "helios-run-report");
    std::remove(path.c_str());
}

TEST(Cli, ProfileWritesSchemaV2WithProfileSection)
{
    const std::string path = tempPath("cli_profile.json");
    std::remove(path.c_str());
    EXPECT_EQ(runCli("--profile " + path), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    EXPECT_EQ(report.at("version").asUint(), 2u);
    ASSERT_GT(report.at("runs").size(), 0u);
    EXPECT_TRUE(report.at("runs").at(0).has("profile"));
    std::remove(path.c_str());
}

TEST(Cli, UnknownOptionExitsTwo)
{
    EXPECT_EQ(runCli("--no-such-flag"), 2);
}

namespace
{

/** Run helios_run with @a args, capturing stdout into @a out. */
int
runCliCapture(const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_stdout.txt");
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                DOTPROD_S + " --max-insts 2000 " +
                                args + " > " + path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

} // namespace

TEST(Cli, TimeFlagPrintsSimulationSpeedLine)
{
    // One fixed-format line: wall seconds, host-MHz-equivalent
    // (simulated cycles per host second), simulated µops per second.
    std::string out;
    ASSERT_EQ(runCliCapture("--time", out), 0);
    double seconds = 0, mhz = 0, muops = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf MHz-equivalent, "
                          "%lf Muops/s",
                          &seconds, &mhz, &muops),
              3)
        << out;
    EXPECT_GE(seconds, 0.0);
    // A 2000-instruction run cannot take zero cycles or µops, so the
    // rates are positive whenever the clock resolved at all.
    if (seconds > 0) {
        EXPECT_GT(mhz, 0.0);
        EXPECT_GT(muops, 0.0);
    }
}

TEST(Cli, TimeFlagWorksWithSweep)
{
    std::string out;
    ASSERT_EQ(runCliCapture("--sweep --time --jobs 1", out), 0);
    EXPECT_NE(out.find("time: "), std::string::npos) << out;
}

TEST(Cli, TimeFlagWorksWithFunctional)
{
    // Functional mode has no cycles, so the line reports wall time
    // and retired instructions per second instead.
    std::string out;
    ASSERT_EQ(runCliCapture("--functional --time", out), 0);
    double seconds = 0, minst = 0;
    const char *line = std::strstr(out.c_str(), "time: ");
    ASSERT_NE(line, nullptr) << out;
    ASSERT_EQ(std::sscanf(line,
                          "time: %lf s wall, %lf Minst/s (functional)",
                          &seconds, &minst),
              2)
        << out;
    EXPECT_GE(seconds, 0.0);
    if (seconds > 0)
        EXPECT_GT(minst, 0.0);
}

TEST(Cli, TimeFlagWorksWithFunctionalReferenceEngine)
{
    std::string out;
    ASSERT_EQ(
        runCliCapture("--functional --engine reference --time", out),
        0);
    EXPECT_NE(out.find("Minst/s (functional)"), std::string::npos)
        << out;
}

// ---------------------------------------------------------------------
// Real-binary (--elf) frontend

namespace
{

/** Run helios_run with a raw argument string (no implicit input). */
int
runRaw(const std::string &args, std::string &out)
{
    const std::string path = tempPath("cli_raw_stdout.txt");
    const std::string command = std::string(HELIOS_RUN_BIN) + " " +
                                args + " > " + path + " 2>&1";
    const int status = std::system(command.c_str());
    EXPECT_TRUE(WIFEXITED(status)) << command;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    std::remove(path.c_str());
    return WEXITSTATUS(status);
}

/** Emit an ELF image for a tiny exit-with-7 kernel; returns its path. */
std::string
makeExitSevenElf()
{
    const std::string asm_path = tempPath("cli_exit7.s");
    const std::string elf_path = tempPath("cli_exit7.elf");
    {
        std::ofstream out(asm_path);
        out << "li a0, 7\nli a7, 93\necall\n";
    }
    std::string text;
    EXPECT_EQ(runRaw(asm_path + " --emit-elf " + elf_path, text), 0)
        << text;
    return elf_path;
}

} // namespace

TEST(Cli, ElfMissingFileExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw("--elf " + unwritablePath("missing.elf"), out),
              2);
    EXPECT_NE(out.find("cannot open"), std::string::npos) << out;
}

TEST(Cli, ElfConflictsWithAssemblyInputExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw(std::string(DOTPROD_S) + " --elf whatever.elf",
                     out),
              2);
    EXPECT_NE(out.find("conflicts"), std::string::npos) << out;
}

TEST(Cli, ArgvWithoutElfExitsTwo)
{
    std::string out;
    EXPECT_EQ(runRaw(std::string(DOTPROD_S) + " --argv x y", out), 2);
    EXPECT_NE(out.find("--elf"), std::string::npos) << out;
}

TEST(Cli, MalformedElfExitsOne)
{
    const std::string path = tempPath("cli_garbage.elf");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not an ELF image at all................";
    }
    std::string out;
    EXPECT_EQ(runRaw("--elf " + path, out), 1);
    EXPECT_NE(out.find("ELF"), std::string::npos) << out;
    std::remove(path.c_str());
}

TEST(Cli, EmitElfThenRunPropagatesGuestExitCode)
{
    const std::string elf_path = makeExitSevenElf();
    std::string out;
    EXPECT_EQ(runRaw("--elf " + elf_path + " --functional", out), 7)
        << out;
    EXPECT_NE(out.find("exit code (a0): 7"), std::string::npos) << out;
    // The frontend banner names the image and its fingerprint.
    EXPECT_NE(out.find("elf: "), std::string::npos) << out;
    EXPECT_NE(out.find("hash 0x"), std::string::npos) << out;
    std::remove(elf_path.c_str());
}

TEST(Cli, ElfTimingRunAlsoPropagatesExitCode)
{
    const std::string elf_path = makeExitSevenElf();
    std::string out;
    EXPECT_EQ(runRaw("--elf " + elf_path + " --config Helios", out),
              7)
        << out;
    std::remove(elf_path.c_str());
}

TEST(Cli, ElfSweepReportRecordsProgramHash)
{
    const std::string elf_path = makeExitSevenElf();
    const std::string report_path = tempPath("cli_elf_report.json");
    std::remove(report_path.c_str());

    std::string out;
    // --sweep compares configurations; it must not propagate the
    // guest exit code, so a clean sweep exits 0.
    EXPECT_EQ(runRaw("--elf " + elf_path + " --sweep --jobs 1 "
                     "--report " + report_path,
                     out),
              0)
        << out;

    std::ifstream in(report_path);
    ASSERT_TRUE(in.good()) << report_path;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue report = JsonValue::parse(text.str());
    ASSERT_GT(report.at("runs").size(), 0u);
    for (size_t i = 0; i < report.at("runs").size(); ++i) {
        const JsonValue &run = report.at("runs").at(i);
        ASSERT_TRUE(run.has("program_hash"));
        EXPECT_NE(run.at("program_hash").asUint(), 0u);
        EXPECT_EQ(run.at("exit_code").asUint(), 7u);
    }
    std::remove(report_path.c_str());
    std::remove(elf_path.c_str());
}
