/** @file Cache and hierarchy timing tests. */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

using namespace helios;

TEST(Cache, ColdMissThenHit)
{
    Cache cache(1024, 2, 64); // 8 sets, 2 ways
    EXPECT_FALSE(cache.access(0x10));
    EXPECT_TRUE(cache.access(0x10));
    EXPECT_EQ(cache.misses, 1u);
    EXPECT_EQ(cache.hits, 1u);
}

TEST(Cache, LruEviction)
{
    Cache cache(1024, 2, 64); // 8 sets, 2 ways
    // Three lines mapping to set 0 (line addrs multiples of 8).
    cache.access(0x00);
    cache.access(0x08);
    cache.access(0x00); // touch: 0x08 is now LRU
    cache.access(0x10); // evicts 0x08
    EXPECT_TRUE(cache.probe(0x00));
    EXPECT_FALSE(cache.probe(0x08));
    EXPECT_TRUE(cache.probe(0x10));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache cache(1024, 2, 64);
    EXPECT_FALSE(cache.probe(0x42));
    EXPECT_FALSE(cache.probe(0x42));
    EXPECT_EQ(cache.misses, 0u);
}

TEST(Cache, HitInLaterWayAfterInvalidEarlierWay)
{
    Cache cache(2048, 4, 64);
    cache.access(0x100);
    cache.access(0x100);
    EXPECT_EQ(cache.hits, 1u);
}

TEST(Hierarchy, LatencyLadder)
{
    CoreParams params;
    CacheHierarchy hierarchy(params);
    // Cold: full memory latency; then L1 hit.
    EXPECT_EQ(hierarchy.dataAccess(0x999), params.memLatency);
    EXPECT_EQ(hierarchy.dataAccess(0x999), params.l1Latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CoreParams params;
    CacheHierarchy hierarchy(params);
    hierarchy.dataAccess(0x1);
    // Thrash L1 set of 0x1: lines mapping to the same L1 set are
    // spaced by numSets = 48K/(12*64) = 64 lines.
    for (unsigned i = 1; i <= params.l1dWays; ++i)
        hierarchy.dataAccess(0x1 + i * 64);
    // 0x1 evicted from L1 (13 lines in a 12-way set) but still in L2.
    EXPECT_EQ(hierarchy.dataAccess(0x1), params.l2Latency);
}

TEST(Hierarchy, InstSideHitIsFree)
{
    CoreParams params;
    CacheHierarchy hierarchy(params);
    EXPECT_GT(hierarchy.instAccess(0x77), 0u);
    EXPECT_EQ(hierarchy.instAccess(0x77), 0u);
}

TEST(Hierarchy, StoreDrainCosts)
{
    CoreParams params;
    CacheHierarchy hierarchy(params);
    const unsigned cold = hierarchy.storeDrain(0x2000);
    EXPECT_GT(cold, 1u); // miss holds the SQ entry
    EXPECT_EQ(hierarchy.storeDrain(0x2000), 1u); // hit drains fast
}
