/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace helios;

TEST(Stats, CounterOperations)
{
    StatGroup stats;
    Stat &c = stats.counter("pipeline.cycles");
    ++c;
    c += 10;
    c++;
    EXPECT_EQ(stats.get("pipeline.cycles"), 12u);
}

TEST(Stats, MissingCounterReadsZero)
{
    StatGroup stats;
    EXPECT_EQ(stats.get("never.created"), 0u);
}

TEST(Stats, SameNameSameCounter)
{
    StatGroup stats;
    stats.counter("x") += 3;
    stats.counter("x") += 4;
    EXPECT_EQ(stats.get("x"), 7u);
}

TEST(Stats, DumpSortedByName)
{
    StatGroup stats;
    stats.counter("b") += 2;
    stats.counter("a") += 1;
    stats.counter("c") += 3;
    auto dump = stats.dump();
    ASSERT_EQ(dump.size(), 3u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
    EXPECT_EQ(dump[2].first, "c");
    EXPECT_EQ(dump[2].second, 3u);
}

TEST(Stats, ResetAll)
{
    StatGroup stats;
    stats.counter("x") += 5;
    stats.counter("y") += 6;
    stats.resetAll();
    EXPECT_EQ(stats.get("x"), 0u);
    EXPECT_EQ(stats.get("y"), 0u);
}

TEST(Stats, ToStringContainsEntries)
{
    StatGroup stats;
    stats.counter("alpha") += 7;
    const std::string text = stats.toString();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find('7'), std::string::npos);
}
