/**
 * @file
 * Differential verification harness: fast (tier-1) coverage.
 *
 * A smoke subset of workloads runs through {NoFusion, CSF-SBR,
 * Helios, OracleFusion} asserting identical final architectural state
 * and committed counts; harness mechanics (violation reporting, JSON,
 * option validation) are exercised directly. The full workload suite
 * lives in test_differential_full.cc under the `slow` ctest label.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/differential.hh"

using namespace helios;

namespace
{

constexpr uint64_t smokeBudget = 20'000;

std::vector<const Workload *>
pick(std::initializer_list<const char *> names)
{
    std::vector<const Workload *> workloads;
    for (const char *name : names)
        workloads.push_back(&findWorkload(name));
    return workloads;
}

} // namespace

TEST(Differential, SmokeSubsetAgreesAcrossConfigs)
{
    DiffOptions opts;
    opts.maxInsts = smokeBudget;
    const DiffReport report = runDifferential(
        pick({"605.mcf_s", "qsort", "crc32"}), opts);

    ASSERT_EQ(report.workloads.size(), 3u);
    ASSERT_EQ(report.results.size(),
              report.workloads.size() * report.modes.size());
    EXPECT_TRUE(report.ok()) << report.toJson();

    // Every cell actually ran and the committed counts line up with
    // the functional hart even before the cross-checks.
    for (const RunResult &result : report.results) {
        EXPECT_GT(result.cycles, 0u) << result.workload;
        EXPECT_EQ(result.instructions, result.hartInstructions)
            << result.workload;
    }
}

TEST(Differential, FusedModesNeverCommitFewerInstructions)
{
    DiffOptions opts;
    opts.maxInsts = smokeBudget;
    const DiffReport report =
        runDifferential(pick({"dijkstra", "sha"}), opts);
    ASSERT_TRUE(report.ok()) << report.toJson();

    for (size_t w = 0; w < report.workloads.size(); ++w) {
        const RunResult &base = report.result(w, 0);
        for (size_t m = 1; m < report.modes.size(); ++m) {
            const RunResult &res = report.result(w, m);
            EXPECT_EQ(res.instructions, base.instructions);
            EXPECT_EQ(res.archChecksum, base.archChecksum);
            EXPECT_EQ(res.memChecksum, base.memChecksum);
            // Fusion shrinks the µ-op stream, never grows it.
            EXPECT_LE(res.uops, base.uops);
        }
    }
}

TEST(Differential, ViolationPathProducesReport)
{
    // An impossible IPC demand forces the regression check to fire,
    // exercising the reporting path without corrupting a pipeline.
    DiffOptions opts;
    opts.maxInsts = 5'000;
    opts.ipcTolerance = -10.0; // fused must beat baseline 11x: never
    const DiffReport report = runDifferential(pick({"crc32"}), opts);

    EXPECT_FALSE(report.ok());
    ASSERT_FALSE(report.violations.empty());
    const DiffViolation &violation = report.violations.front();
    EXPECT_EQ(violation.check, "ipc_regression");
    EXPECT_EQ(violation.workload, "crc32");

    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
    EXPECT_NE(json.find("ipc_regression"), std::string::npos) << json;
    EXPECT_NE(json.find("crc32"), std::string::npos) << json;
}

TEST(Differential, ElfWorkloadAgreesAcrossEngines)
{
    // The ELF-loaded kernel routes the real-binary loader, the Linux
    // ABI start stack and the ecall shim (write + brk) through the
    // DynInst-lockstep and end-state engine comparison.
    const EngineDiffReport report =
        runEngineDifferential({&elfChecksumWorkload()});
    EXPECT_TRUE(report.ok()) << report.toJson();
    EXPECT_GT(report.tracedInstructions, 0u);
    EXPECT_GT(report.untracedInstructions, 0u);
}

TEST(Differential, ElfWorkloadAgreesAcrossFusionConfigs)
{
    DiffOptions opts;
    opts.maxInsts = smokeBudget;
    // The kernel retires a few hundred instructions, so its IPC is
    // dominated by pipeline fill and the regression heuristic is
    // noise; this test is about architectural agreement.
    opts.ipcTolerance = 1.0;
    const DiffReport report =
        runDifferential({&elfChecksumWorkload()}, opts);
    EXPECT_TRUE(report.ok()) << report.toJson();

    ASSERT_FALSE(report.results.empty());
    for (const RunResult &result : report.results) {
        EXPECT_TRUE(result.exited) << result.workload;
        EXPECT_EQ(result.exitCode,
                  elfChecksumWorkload().reference());
        // The report carries the image fingerprint for provenance.
        EXPECT_NE(result.programHash, 0u);
    }
}

TEST(Differential, RejectsDegenerateOptions)
{
    DiffOptions opts;
    opts.modes = {FusionMode::None};
    EXPECT_THROW(runDifferential(pick({"crc32"}), opts), FatalError);
}

TEST(Differential, AuditedSmokeRunIsClean)
{
    if (!auditHooksCompiled())
        GTEST_SKIP() << "pipeline built without HELIOS_AUDIT hooks";

    DiffOptions opts;
    opts.maxInsts = smokeBudget;
    opts.audit = true;
    const DiffReport report = runDifferential(pick({"qsort"}), opts);

    EXPECT_TRUE(report.ok()) << report.toJson();
    EXPECT_TRUE(report.audited);
    for (const RunResult &result : report.results) {
        EXPECT_TRUE(result.audited);
        EXPECT_GT(result.auditChecks, 0u);
    }
}
