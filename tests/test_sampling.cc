/**
 * @file
 * Sampled-simulation tests: spec validation, the weighted-mean /
 * confidence-interval estimator on known inputs, checkpoint-set
 * construction (including early program exit and checkpoint-dir
 * persistence), end-to-end sampled-vs-full accuracy, the schema-v5
 * `sampled` report section, and spec-keyed ledger records.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>

#include "common/logging.hh"
#include "harness/run_ledger.hh"
#include "harness/run_report.hh"
#include "harness/sampling.hh"
#include "ledger/ledger.hh"
#include "workloads/workloads.hh"

using namespace helios;
namespace fs = std::filesystem;

namespace
{

SamplingSpec
spec(uint64_t budget, uint64_t interval, uint64_t warmup,
     uint64_t samples)
{
    SamplingSpec s;
    s.totalBudget = budget;
    s.intervalInsts = interval;
    s.warmupInsts = warmup;
    s.sampleCount = samples;
    return s;
}

IntervalSample
interval(uint64_t instructions, uint64_t cycles)
{
    IntervalSample s;
    s.instructions = instructions;
    s.cycles = cycles;
    return s;
}

} // namespace

TEST(SamplingSpec, ValidateRejectsDegenerateShapes)
{
    EXPECT_NO_THROW(spec(1'000'000, 10'000, 2'000, 10).validate());
    // Zero interval / zero sample count.
    EXPECT_THROW(spec(1'000'000, 0, 0, 10).validate(), FatalError);
    EXPECT_THROW(spec(1'000'000, 10'000, 0, 0).validate(), FatalError);
    // Warmup must leave room for a measured window.
    EXPECT_THROW(spec(1'000'000, 10'000, 10'000, 10).validate(),
                 FatalError);
    EXPECT_THROW(spec(1'000'000, 10'000, 20'000, 10).validate(),
                 FatalError);
    // The frame must exist and hold sampleCount disjoint windows.
    EXPECT_THROW(spec(0, 10'000, 0, 10).validate(), FatalError);
    EXPECT_THROW(spec(UINT64_MAX, 10'000, 0, 10).validate(),
                 FatalError);
    EXPECT_THROW(spec(100'000, 10'000, 2'000, 10).validate(),
                 FatalError);
    // Zero warmup is legal: sampling without cache warming is a
    // valid (if biased) configuration the error bench quantifies.
    EXPECT_NO_THROW(spec(1'000'000, 10'000, 0, 10).validate());
}

TEST(SamplingSpec, StrideAndHash)
{
    const SamplingSpec base = spec(1'000'000, 10'000, 2'000, 10);
    EXPECT_EQ(base.stride(), 100'000u);

    // Every numeric field feeds the hash; the checkpoint directory
    // (pure storage location) must not.
    SamplingSpec other = base;
    other.checkpointDir = "/somewhere/else";
    EXPECT_EQ(other.specHash(), base.specHash());
    other = base;
    other.totalBudget += 1;
    EXPECT_NE(other.specHash(), base.specHash());
    other = base;
    other.intervalInsts += 1;
    EXPECT_NE(other.specHash(), base.specHash());
    other = base;
    other.warmupInsts += 1;
    EXPECT_NE(other.specHash(), base.specHash());
    other = base;
    other.sampleCount += 1;
    EXPECT_NE(other.specHash(), base.specHash());
}

TEST(SampledEstimate, SingleSampleHasNoInterval)
{
    const std::vector<IntervalSample> one = {interval(1'000, 500)};
    const SampledEstimate est =
        estimateWeighted(one, &IntervalSample::ipc);
    EXPECT_EQ(est.samples, 1u);
    EXPECT_DOUBLE_EQ(est.mean, 2.0);
    EXPECT_DOUBLE_EQ(est.ci95Half, 0.0);
}

TEST(SampledEstimate, EqualWeightsMatchClassicTInterval)
{
    // Two equal-weight samples with exact IPC 1.0 (1000/1000) and 4.0
    // (1000/250): mean 2.5; weighted variance 0.5*1.5^2 + 0.5*1.5^2 =
    // 2.25, times n/(n-1) = 4.5; stderr sqrt(4.5/2) = 1.5; and
    // t(df=1, 97.5%) = 12.706.
    const std::vector<IntervalSample> exact = {interval(1'000, 1'000),
                                               interval(1'000, 250)};
    const SampledEstimate est =
        estimateWeighted(exact, &IntervalSample::ipc);
    EXPECT_EQ(est.samples, 2u);
    EXPECT_DOUBLE_EQ(est.mean, 2.5);
    EXPECT_NEAR(est.ci95Half, 12.706 * 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(est.lo(), est.mean - est.ci95Half);
    EXPECT_DOUBLE_EQ(est.hi(), est.mean + est.ci95Half);
}

TEST(SampledEstimate, InstructionWeightedMean)
{
    // 300 instructions at IPC 1.0, 100 instructions at IPC 2.0:
    // weighted mean (300*1 + 100*2) / 400 = 1.25.
    const std::vector<IntervalSample> mixed = {interval(300, 300),
                                               interval(100, 50)};
    const SampledEstimate est =
        estimateWeighted(mixed, &IntervalSample::ipc);
    EXPECT_DOUBLE_EQ(est.mean, 1.25);
}

TEST(SampledEstimate, ZeroIntervalsYieldZero)
{
    const SampledEstimate est =
        estimateWeighted({}, &IntervalSample::ipc);
    EXPECT_EQ(est.samples, 0u);
    EXPECT_DOUBLE_EQ(est.mean, 0.0);
    EXPECT_DOUBLE_EQ(est.ci95Half, 0.0);
}

TEST(Sampling, BuildCheckpointsCutsAtStride)
{
    const Workload &workload = findWorkload("crc32");
    const CheckpointSet set =
        buildCheckpoints(workload, spec(200'000, 10'000, 2'000, 4));
    ASSERT_EQ(set.checkpoints.size(), 4u);
    EXPECT_FALSE(set.reused);
    EXPECT_FALSE(set.exited);
    for (size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(set.checkpoints[k].instIndex, k * 50'000);
        EXPECT_EQ(set.checkpoints[k].programHash, set.programHash);
    }
    EXPECT_EQ(set.ffInstructions, 150'000u);
}

TEST(Sampling, BuildCheckpointsStopsAtProgramExit)
{
    // crc32 exits after ~288K instructions; cuts past that cannot
    // exist and are dropped rather than fabricated.
    const Workload &workload = findWorkload("crc32");
    const CheckpointSet set =
        buildCheckpoints(workload, spec(1'000'000, 10'000, 2'000, 4));
    EXPECT_EQ(set.checkpoints.size(), 2u); // cuts 0 and 250'000
    EXPECT_TRUE(set.exited);
    EXPECT_EQ(set.exitCode, workload.reference());
}

TEST(Sampling, CheckpointDirPersistsAndReuses)
{
    const std::string dir = ::testing::TempDir() + "sampling_ckpt_dir";
    fs::remove_all(dir);

    const Workload &workload = findWorkload("fft");
    SamplingSpec s = spec(100'000, 5'000, 1'000, 4);
    s.checkpointDir = dir;

    const CheckpointSet first = buildCheckpoints(workload, s);
    EXPECT_FALSE(first.reused);
    const CheckpointSet second = buildCheckpoints(workload, s);
    EXPECT_TRUE(second.reused);

    ASSERT_EQ(first.checkpoints.size(), second.checkpoints.size());
    for (size_t i = 0; i < first.checkpoints.size(); ++i)
        EXPECT_TRUE(first.checkpoints[i] == second.checkpoints[i]);
    EXPECT_EQ(first.ffInstructions, second.ffInstructions);

    // A different interval/warmup shape over the same cut schedule
    // (same budget, same sample count) shares the persisted cuts.
    SamplingSpec reshaped = s;
    reshaped.intervalInsts = 8'000;
    reshaped.warmupInsts = 500;
    EXPECT_TRUE(buildCheckpoints(workload, reshaped).reused);

    // A different schedule must not: the manifest is keyed by it.
    SamplingSpec rescheduled = s;
    rescheduled.sampleCount = 5;
    EXPECT_FALSE(buildCheckpoints(workload, rescheduled).reused);

    fs::remove_all(dir);
}

TEST(Sampling, SampledIpcTracksFullRun)
{
    // End-to-end accuracy on a real kernel: the sampled estimate must
    // land within a few percent of ground truth. bitcount is long
    // (~1.5M instructions) and phase-stable, so modest warmup
    // suffices; the CI gate (bench/sampling_error) enforces the
    // committed tolerance on more hostile workloads.
    const Workload &workload = findWorkload("bitcount");
    const CoreParams params = CoreParams::icelake(FusionMode::Helios);
    const uint64_t budget = 600'000;

    const RunResult full = runOne(workload, params, budget);
    const SampledResult sampled =
        runSampled(workload, params, spec(budget, 20'000, 10'000, 8));

    ASSERT_EQ(sampled.intervals.size(), 8u);
    EXPECT_EQ(sampled.droppedIntervals, 0u);
    ASSERT_GT(full.ipc(), 0.0);
    const double err =
        std::abs(sampled.ipc.mean - full.ipc()) / full.ipc();
    EXPECT_LT(err, 0.05)
        << "sampled " << sampled.ipc.mean << " vs full " << full.ipc();
    // The measured totals cover the sampled windows. The warmup
    // snapshot lands on a commit-group boundary, so each window may
    // be short by up to a commit width.
    EXPECT_NEAR(double(sampled.measuredInstructions),
                double(8u * 20'000), 8.0 * 16.0);
    // Detailed work is warmup + window per interval — the whole point:
    // far less than the full frame.
    EXPECT_EQ(sampled.detailedInstructions, 8u * 30'000);
    EXPECT_LT(sampled.detailedInstructions, budget);
}

TEST(Sampling, DeterministicAcrossJobCounts)
{
    // Interval cells ride runMatrix; like every matrix, the worker
    // count must not move a single number.
    const Workload &workload = findWorkload("crc32");
    const CoreParams params = CoreParams::icelake(FusionMode::Helios);
    const SamplingSpec s = spec(200'000, 10'000, 2'000, 4);

    const SampledResult serial = runSampled(workload, params, s, 1);
    const SampledResult parallel = runSampled(workload, params, s, 4);
    ASSERT_EQ(serial.intervals.size(), parallel.intervals.size());
    EXPECT_EQ(serial.measuredCycles, parallel.measuredCycles);
    EXPECT_EQ(serial.measuredInstructions,
              parallel.measuredInstructions);
    EXPECT_DOUBLE_EQ(serial.ipc.mean, parallel.ipc.mean);
    EXPECT_DOUBLE_EQ(serial.ipc.ci95Half, parallel.ipc.ci95Half);
}

TEST(Sampling, SampledSectionRoundTripsThroughSchemaV5)
{
    const Workload &workload = findWorkload("crc32");
    const CoreParams params = CoreParams::icelake(FusionMode::Helios);
    const SampledResult result =
        runSampled(workload, params, spec(200'000, 10'000, 2'000, 4));

    RunReportFile file;
    file.generator = "test_sampling";
    file.runs.push_back(makeSampledRunReport(result));
    EXPECT_EQ(file.version, 5u);

    const RunReportFile back =
        RunReportFile::fromJsonText(file.toJsonText());
    ASSERT_EQ(back.runs.size(), 1u);
    EXPECT_TRUE(back == file);
    ASSERT_FALSE(back.runs[0].sampled.isNull());

    const SampledResult decoded =
        SampledResult::fromJson(back.runs[0].sampled);
    EXPECT_EQ(decoded.workload, result.workload);
    EXPECT_EQ(decoded.mode, result.mode);
    EXPECT_EQ(decoded.spec.totalBudget, result.spec.totalBudget);
    EXPECT_EQ(decoded.spec.specHash(), result.spec.specHash());
    EXPECT_EQ(decoded.measuredCycles, result.measuredCycles);
    EXPECT_EQ(decoded.measuredInstructions,
              result.measuredInstructions);
    EXPECT_DOUBLE_EQ(decoded.ipc.mean, result.ipc.mean);
    EXPECT_DOUBLE_EQ(decoded.ipc.ci95Half, result.ipc.ci95Half);
    ASSERT_EQ(decoded.intervals.size(), result.intervals.size());
    for (size_t i = 0; i < decoded.intervals.size(); ++i) {
        EXPECT_EQ(decoded.intervals[i].startInst,
                  result.intervals[i].startInst);
        EXPECT_EQ(decoded.intervals[i].cycles,
                  result.intervals[i].cycles);
    }

    // The headline fields a v4-era consumer reads are the measured
    // totals and the weighted estimate.
    EXPECT_EQ(back.runs[0].instructions, result.measuredInstructions);
    EXPECT_DOUBLE_EQ(back.runs[0].ipc, result.ipc.mean);
}

TEST(ReportSchemaV5, OlderVersionsParseWithNullSampledSection)
{
    // v5 is purely additive: a v1–v4 file (no `sampled` member)
    // parses under the v5 reader with an absent (null) section.
    RunResult result;
    result.workload = "crc32";
    result.mode = FusionMode::Helios;
    result.cycles = 100;
    result.instructions = 150;
    RunReportFile file;
    file.add(result, 1000);

    for (const uint64_t version :
         {uint64_t(1), uint64_t(2), uint64_t(3), uint64_t(4)}) {
        JsonValue json = file.toJson();
        json.set("version", version);
        const RunReportFile parsed =
            RunReportFile::fromJsonText(json.dump(2));
        EXPECT_EQ(parsed.version, version);
        ASSERT_EQ(parsed.runs.size(), 1u);
        EXPECT_TRUE(parsed.runs[0].sampled.isNull());
    }
}

TEST(Sampling, LedgerRecordsKeyedBySamplingSpec)
{
    const std::string dir =
        ::testing::TempDir() + "sampling_ledger_dir";
    fs::remove_all(dir);
    Ledger::disarm();
    Ledger::arm(dir);

    const Workload &workload = findWorkload("crc32");
    const CoreParams params = CoreParams::icelake(FusionMode::Helios);
    const SamplingSpec s = spec(200'000, 10'000, 2'000, 4);

    // runSampled itself must NOT record its interval cells (they
    // would collide under the plain run key); only the aggregate,
    // recorded explicitly, lands.
    const SampledResult result = runSampled(workload, params, s);
    EXPECT_EQ(Ledger::global()->recorded(), 0u);

    EXPECT_EQ(recordSampledToLedger(result), LedgerOutcome::Recorded);
    EXPECT_EQ(recordSampledToLedger(result), LedgerOutcome::Hit);

    // A different spec is a different estimate: a fresh record, not
    // a hit.
    const SampledResult other =
        runSampled(workload, params, spec(200'000, 10'000, 1'000, 4));
    EXPECT_EQ(recordSampledToLedger(other), LedgerOutcome::Recorded);

    Ledger::disarm();
    fs::remove_all(dir);
}
