/**
 * @file
 * JSON double-emission regression tests: finite values must round-trip
 * through the shortest decimal form that parses back exactly, and
 * non-finite values must be rejected loudly — silently emitting `nan`
 * (not JSON) or degrading to null would corrupt a report file.
 */

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/logging.hh"

using namespace helios;

namespace
{

double
reparse(const std::string &text)
{
    return std::strtod(text.c_str(), nullptr);
}

} // namespace

TEST(JsonDouble, ShortestFormRoundTripsExactly)
{
    // Adversarial values: decimals with no exact binary form, subnormal
    // and near-overflow magnitudes, negative zero, and values whose
    // %.15g spelling does NOT round-trip (forcing the 16/17-digit
    // fallback).
    const double values[] = {
        0.0,
        -0.0,
        0.1,
        -0.1,
        1.0 / 3.0,
        2.0 / 3.0,
        0.30000000000000004, // classic 0.1 + 0.2
        1e-323,              // subnormal
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        1.0 + std::numeric_limits<double>::epsilon(),
        9007199254740993.0, // 2^53 + 1 rounds; still must round-trip
        1.7976931348623155e308,
        5e-324,
        3.141592653589793,
        2.718281828459045,
        1e100,
        -1e-100,
        123456789.123456789,
    };
    for (const double value : values) {
        const std::string text = formatShortestDouble(value);
        EXPECT_EQ(reparse(text), value) << "value spelled " << text;
    }
}

TEST(JsonDouble, PrefersShortSpellings)
{
    // The entire point of shortest-form: human-friendly spellings for
    // values that have one, instead of 17 significant digits.
    EXPECT_EQ(formatShortestDouble(0.1), "0.1");
    EXPECT_EQ(formatShortestDouble(2.5), "2.5");
    EXPECT_EQ(formatShortestDouble(100.0), "100");
}

TEST(JsonDouble, WriterUsesShortestForm)
{
    JsonValue object = JsonValue::object();
    object.set("ipc", JsonValue(0.1));
    EXPECT_EQ(object.dump(0), "{\"ipc\":0.1}");

    // And the full parse → dump → parse cycle is lossless.
    const double value = 1.0 / 3.0;
    JsonValue original(value);
    const JsonValue reparsed = JsonValue::parse(original.dump(0));
    EXPECT_EQ(reparsed.asDouble(), value);
}

TEST(JsonDouble, NonFiniteValuesAreRejected)
{
    const double bad[] = {
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
    };
    for (const double value : bad) {
        JsonValue json(value);
        EXPECT_THROW(json.dump(0), FatalError);
        EXPECT_THROW(json.dump(2), FatalError);
    }
}

TEST(JsonDouble, NonFiniteErrorNamesTheProblem)
{
    try {
        JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(0);
        FAIL() << "NaN serialization must throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("NaN"),
                  std::string::npos);
    }
    try {
        JsonValue(-std::numeric_limits<double>::infinity()).dump(0);
        FAIL() << "Infinity serialization must throw";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("Infinity"),
                  std::string::npos);
    }
}

TEST(JsonDouble, NestedNonFiniteIsStillCaught)
{
    // The guard must fire wherever the value hides, not just at the
    // top level.
    JsonValue object = JsonValue::object();
    JsonValue inner = JsonValue::array();
    inner.push(JsonValue(1.5));
    inner.push(JsonValue(std::numeric_limits<double>::infinity()));
    object.set("series", inner);
    EXPECT_THROW(object.dump(2), FatalError);
}
