/**
 * @file
 * Encoder/decoder tests, including an exhaustive property-based
 * round-trip sweep over every opcode with randomized operands.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/decoder.hh"
#include "isa/encoder.hh"

using namespace helios;

namespace
{

Instruction
make(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    return inst;
}

} // namespace

TEST(Encode, KnownEncodings)
{
    // Cross-checked against riscv-tests / GNU as output.
    EXPECT_EQ(encode(make(Op::Addi, 10, 10, 0, 1)), 0x00150513u);
    EXPECT_EQ(encode(make(Op::Add, 1, 2, 3, 0)), 0x003100b3u);
    EXPECT_EQ(encode(make(Op::Ld, 4, 1, 0, 8)), 0x0080b203u);
    EXPECT_EQ(encode(make(Op::Sd, 0, 2, 5, 16)), 0x00513823u);
    EXPECT_EQ(encode(make(Op::Lui, 5, 0, 0, 0x12345)), 0x123452b7u);
    EXPECT_EQ(encode(make(Op::Jal, 1, 0, 0, 0)), 0x000000efu);
    EXPECT_EQ(encode(make(Op::Ecall, 0, 0, 0, 0)), 0x00000073u);
    EXPECT_EQ(encode(make(Op::Ebreak, 0, 0, 0, 0)), 0x00100073u);
    EXPECT_EQ(encode(make(Op::Mul, 3, 4, 5, 0)), 0x025201b3u);
    EXPECT_EQ(encode(make(Op::Srai, 6, 7, 0, 3)), 0x4033d313u);
    EXPECT_EQ(encode(make(Op::Beq, 0, 1, 2, -4)), 0xfe208ee3u);
}

TEST(Decode, KnownWords)
{
    Instruction inst = decode(0x00150513); // addi a0, a0, 1
    EXPECT_EQ(inst.op, Op::Addi);
    EXPECT_EQ(inst.rd, 10);
    EXPECT_EQ(inst.rs1, 10);
    EXPECT_EQ(inst.imm, 1);

    inst = decode(0x0080b203); // ld tp, 8(ra)
    EXPECT_EQ(inst.op, Op::Ld);
    EXPECT_EQ(inst.rd, 4);
    EXPECT_EQ(inst.rs1, 1);
    EXPECT_EQ(inst.imm, 8);

    inst = decode(0xfe208ee3); // beq ra, sp, -4
    EXPECT_EQ(inst.op, Op::Beq);
    EXPECT_EQ(inst.rs1, 1);
    EXPECT_EQ(inst.rs2, 2);
    EXPECT_EQ(inst.imm, -4);
}

TEST(Decode, InvalidWords)
{
    EXPECT_EQ(decode(0x00000000).op, Op::Invalid);
    EXPECT_EQ(decode(0xffffffff).op, Op::Invalid);
    EXPECT_EQ(decode(0x0000007f).op, Op::Invalid);
}

TEST(Decode, NegativeImmediates)
{
    // addi a0, a0, -1
    Instruction inst = decode(encode(make(Op::Addi, 10, 10, 0, -1)));
    EXPECT_EQ(inst.imm, -1);
    // sd with negative offset
    inst = decode(encode(make(Op::Sd, 0, 2, 8, -32)));
    EXPECT_EQ(inst.imm, -32);
    // jal backwards
    inst = decode(encode(make(Op::Jal, 0, 0, 0, -2048)));
    EXPECT_EQ(inst.imm, -2048);
}

TEST(Encode, ImmediateRangeChecks)
{
    EXPECT_THROW(encode(make(Op::Addi, 1, 1, 0, 4096)), FatalError);
    EXPECT_THROW(encode(make(Op::Addi, 1, 1, 0, -4097)), FatalError);
    EXPECT_THROW(encode(make(Op::Beq, 0, 1, 2, 1)), FatalError);
    EXPECT_THROW(encode(make(Op::Slli, 1, 1, 0, 64)), FatalError);
    EXPECT_THROW(encode(make(Op::Slliw, 1, 1, 0, 32)), FatalError);
}

namespace
{

/**
 * Property sweep: for every opcode, random legal operands must survive
 * an encode→decode round trip unchanged.
 */
class RoundTrip : public ::testing::TestWithParam<unsigned>
{};

int64_t
randomImmFor(Op op, Rng &rng)
{
    switch (op) {
      case Op::Lui:
      case Op::Auipc:
        return rng.range(-(1 << 19), (1 << 19) - 1);
      case Op::Jal:
        return rng.range(-(1 << 19), (1 << 19) - 1) * 2;
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Bge: case Op::Bltu: case Op::Bgeu:
        return rng.range(-(1 << 11), (1 << 11) - 1) * 2;
      case Op::Slli: case Op::Srli: case Op::Srai:
        return rng.range(0, 63);
      case Op::Slliw: case Op::Srliw: case Op::Sraiw:
        return rng.range(0, 31);
      default:
        return rng.range(-2048, 2047);
    }
}

} // namespace

TEST_P(RoundTrip, EncodeDecodeIdentity)
{
    const Op op = static_cast<Op>(GetParam());
    const OpInfo &info = opInfo(op);
    Rng rng(GetParam() * 977 + 3);

    for (int trial = 0; trial < 200; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.rd = info.writesRd ? uint8_t(rng.below(32)) : 0;
        inst.rs1 = info.readsRs1 || info.cls == OpClass::Load ||
                           info.cls == OpClass::Store
                       ? uint8_t(rng.below(32))
                       : 0;
        inst.rs2 = info.readsRs2 ? uint8_t(rng.below(32)) : 0;
        const bool has_imm = !info.readsRs2 ||
                             info.cls == OpClass::Store ||
                             info.cls == OpClass::Branch;
        inst.imm = has_imm && info.cls != OpClass::Serializing
                       ? randomImmFor(op, rng)
                       : 0;
        if (op == Op::Jalr)
            inst.rs2 = 0;

        const uint32_t word = encode(inst);
        const Instruction back = decode(word);
        EXPECT_EQ(back.op, inst.op) << opName(op);
        EXPECT_EQ(back.rd, inst.rd) << opName(op);
        EXPECT_EQ(back.rs1, inst.rs1) << opName(op);
        EXPECT_EQ(back.rs2, inst.rs2) << opName(op);
        EXPECT_EQ(back.imm, inst.imm) << opName(op);
        EXPECT_EQ(back.raw, word) << opName(op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTrip,
    ::testing::Range(1u, unsigned(Op::NumOps)),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        std::string name = opName(static_cast<Op>(info.param));
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });
