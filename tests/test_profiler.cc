/**
 * @file
 * Per-PC fusion-site profiler (src/telemetry/profiler.*) and the
 * annotated-disassembly join (src/telemetry/annotate.*).
 *
 * The load-bearing guarantees under test:
 *  - per-site fused-pair counts sum exactly to the aggregate pairs.*
 *    counters under every fusion mode (the five-class refinement
 *    partitions the three whole-run counters);
 *  - every missed oracle pair carries exactly one reason, the
 *    per-reason counts partition the oracle-minus-predictor gap, and
 *    non-Helios modes only ever see the reasons that exist without a
 *    predictor (cold site / distance over limit);
 *  - attaching the profiler changes NOTHING about the simulation
 *    (bit-identical architectural state and an identical stat dump);
 *  - the windowed time series tiles the run exactly (cycles,
 *    instructions, fused pairs and per-category CPI all sum to the
 *    whole-run values) and round-trips losslessly through the
 *    RunReport v2 schema while v1 files stay parseable;
 *  - the annotated disassembly is well-formed text and JSON with one
 *    line per text-section instruction.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/json.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "telemetry/annotate.hh"
#include "telemetry/profiler.hh"

using namespace helios;

namespace
{

constexpr uint64_t smokeBudget = 20'000;

const FusionMode allModes[] = {FusionMode::None,
                               FusionMode::RiscvFusion,
                               FusionMode::CsfSbr,
                               FusionMode::RiscvFusionPP,
                               FusionMode::Helios,
                               FusionMode::Oracle};

const char *const someWorkloads[] = {"qsort", "crc32", "dijkstra"};

RunResult
profiledRun(const char *workload, FusionMode mode,
            uint64_t window_cycles = 0)
{
    CoreParams params = CoreParams::icelake(mode);
    params.profile = true;
    params.profileWindowCycles = window_cycles;
    return runOne(findWorkload(workload), params, smokeBudget);
}

std::string
tag(const char *workload, FusionMode mode)
{
    return std::string(workload) + "/" + fusionModeName(mode);
}

} // namespace

// ---------------------------------------------------------------------
// Per-site counters vs. whole-run aggregates
// ---------------------------------------------------------------------

TEST(Profiler, SiteCountsPartitionAggregateCounters)
{
    for (const char *workload : someWorkloads) {
        for (FusionMode mode : allModes) {
            const RunResult result = profiledRun(workload, mode);
            ASSERT_TRUE(result.profiled) << tag(workload, mode);
            const ProfileData &profile = result.profile;

            // Re-sum every per-site array; the totals must agree.
            std::array<uint64_t, kNumPairClasses> fused{};
            std::array<uint64_t, kNumMissReasons> missed{};
            uint64_t executions = 0, fused_tail = 0;
            uint64_t attempts = 0, mispredicts = 0;
            for (const ProfileSite &site : profile.sites) {
                for (size_t i = 0; i < kNumPairClasses; ++i)
                    fused[i] += site.fused[i];
                for (size_t i = 0; i < kNumMissReasons; ++i)
                    missed[i] += site.missed[i];
                executions += site.executions;
                fused_tail += site.fusedTail;
                attempts += site.attempts;
                mispredicts += site.mispredicts;
            }
            EXPECT_EQ(fused, profile.fusedTotals)
                << tag(workload, mode);
            EXPECT_EQ(missed, profile.missedTotals)
                << tag(workload, mode);

            // One execution per committed architectural instruction
            // (the fused tail counts at its own pc).
            EXPECT_EQ(executions, result.instructions)
                << tag(workload, mode);
            EXPECT_EQ(fused_tail, profile.fusedPairs())
                << tag(workload, mode);

            // The five-class refinement partitions the aggregate
            // pairs.* counters exactly.
            const auto cls = [&](PairClass c) {
                return profile.fusedTotals[size_t(c)];
            };
            EXPECT_EQ(cls(PairClass::Csf),
                      result.stat("pairs.csf_other"))
                << tag(workload, mode);
            EXPECT_EQ(cls(PairClass::Sbr) + cls(PairClass::Nctf),
                      result.stat("pairs.csf_mem"))
                << tag(workload, mode);
            EXPECT_EQ(cls(PairClass::Ncsf) + cls(PairClass::Dbr),
                      result.stat("pairs.ncsf"))
                << tag(workload, mode);
            EXPECT_EQ(profile.fusedPairs(),
                      result.stat("pairs.csf_other") +
                          result.stat("pairs.csf_mem") +
                          result.stat("pairs.ncsf"))
                << tag(workload, mode);

            // Predictor activity keyed to the tail site.
            EXPECT_EQ(attempts, result.stat("fusion.fp_attempts"))
                << tag(workload, mode);
            EXPECT_EQ(mispredicts, result.stat("fusion.mispredicts"))
                << tag(workload, mode);
        }
    }
}

TEST(Profiler, StallCyclesAreBoundedByCpiCategories)
{
    const RunResult result = profiledRun("qsort", FusionMode::Helios);
    const ProfileData &profile = result.profile;
    ASSERT_EQ(profile.totalCycles, result.cycles);

    // Stall attribution charges at most one (site, category) pair per
    // cycle, so per-category site sums never exceed the whole-run
    // CPI-stack counter and the grand total never exceeds the cycles.
    std::map<std::string, uint64_t> stalls;
    uint64_t total = 0;
    for (const ProfileSite &site : profile.sites)
        for (const auto &[category, cycles] : site.stalls) {
            stalls[category] += cycles;
            total += cycles;
        }
    EXPECT_LE(total, result.cycles);
    EXPECT_GT(total, 0u); // qsort does stall under Helios
    for (const auto &[category, cycles] : stalls) {
        EXPECT_EQ(category.rfind("cpi.", 0), 0u) << category;
        EXPECT_LE(cycles, result.stat(category)) << category;
        EXPECT_NE(category, "cpi.retiring") << "retiring cycles have "
                                               "no blocked head";
    }
}

// ---------------------------------------------------------------------
// Missed-opportunity attribution
// ---------------------------------------------------------------------

TEST(Profiler, MissReasonsPartitionTheGap)
{
    for (const char *workload : someWorkloads) {
        for (FusionMode mode : allModes) {
            const RunResult result = profiledRun(workload, mode);
            const ProfileData &profile = result.profile;

            // Exactly one reason per missed pair: the per-reason
            // totals sum to the number of missed pairs, per site and
            // overall.
            uint64_t site_missed = 0;
            for (const ProfileSite &site : profile.sites)
                site_missed += site.missedPairs();
            EXPECT_EQ(site_missed, profile.missedPairs())
                << tag(workload, mode);

            // Without a Helios predictor there is nothing to agree or
            // disagree with and no NCSF machinery to break a pair:
            // only the predictor-free reasons can appear.
            if (mode != FusionMode::Helios) {
                const auto reason = [&](MissReason r) {
                    return profile.missedTotals[size_t(r)];
                };
                EXPECT_EQ(reason(MissReason::QueueCapacity), 0u)
                    << tag(workload, mode);
                EXPECT_EQ(reason(MissReason::CatalystInterference), 0u)
                    << tag(workload, mode);
                EXPECT_EQ(reason(MissReason::PredictorDisagreement),
                          0u)
                    << tag(workload, mode);
            }
        }
    }
}

TEST(Profiler, OracleFinderSeesUnfusedPairs)
{
    // Under NoFusion every oracle-visible pair is a miss; under Helios
    // most of those same pairs commit fused. The gap the classifier
    // decomposes is the difference.
    const RunResult none = profiledRun("qsort", FusionMode::None);
    const RunResult helios = profiledRun("qsort", FusionMode::Helios);

    EXPECT_EQ(none.profile.fusedPairs(), 0u);
    EXPECT_GT(none.profile.missedPairs(), 0u);
    EXPECT_GT(helios.profile.fusedPairs(), 0u);
    EXPECT_LT(helios.profile.missedPairs(),
              none.profile.missedPairs());

    // NoFusion has no predictor state at all: every miss is a cold
    // site or out of predictor range.
    const auto &missed = none.profile.missedTotals;
    EXPECT_EQ(none.profile.missedPairs(),
              missed[size_t(MissReason::ColdSite)] +
                  missed[size_t(MissReason::DistanceOverLimit)]);
}

// ---------------------------------------------------------------------
// Observer effect
// ---------------------------------------------------------------------

TEST(Profiler, DisabledMeansBitIdenticalRun)
{
    for (FusionMode mode : allModes) {
        CoreParams plain_params = CoreParams::icelake(mode);
        const RunResult plain =
            runOne(findWorkload("crc32"), plain_params, smokeBudget);
        const RunResult profiled =
            profiledRun("crc32", mode, /*window_cycles=*/1000);

        EXPECT_FALSE(plain.profiled) << fusionModeName(mode);
        EXPECT_TRUE(profiled.profiled) << fusionModeName(mode);
        EXPECT_EQ(plain.archChecksum, profiled.archChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(plain.memChecksum, profiled.memChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(plain.cycles, profiled.cycles)
            << fusionModeName(mode);
        EXPECT_EQ(plain.instructions, profiled.instructions)
            << fusionModeName(mode);
        EXPECT_EQ(plain.uops, profiled.uops) << fusionModeName(mode);

        // The profiler writes no counters: the stat dumps are
        // identical entry for entry.
        EXPECT_EQ(plain.stats.dump(), profiled.stats.dump())
            << fusionModeName(mode);
    }
}

// ---------------------------------------------------------------------
// Windowed time series
// ---------------------------------------------------------------------

TEST(Profiler, WindowsTileTheRunExactly)
{
    constexpr uint64_t interval = 512;
    const RunResult result =
        profiledRun("qsort", FusionMode::Helios, interval);
    const ProfileData &profile = result.profile;
    ASSERT_EQ(profile.windowCycles, interval);
    ASSERT_GE(profile.windows.size(), 2u);

    uint64_t cycles = 0, instructions = 0, uops = 0, fused = 0;
    std::map<std::string, uint64_t> cpi;
    for (size_t i = 0; i < profile.windows.size(); ++i) {
        const ProfileWindow &window = profile.windows[i];
        // Windows are contiguous; all but the trailing partial one
        // span exactly the sampling interval.
        EXPECT_EQ(window.startCycle, cycles) << "window " << i;
        if (i + 1 < profile.windows.size()) {
            EXPECT_EQ(window.cycles, interval) << "window " << i;
        }

        // Each window's CPI map partitions its own cycles.
        uint64_t attributed = 0;
        for (const auto &[category, count] : window.cpi) {
            cpi[category] += count;
            attributed += count;
        }
        EXPECT_EQ(attributed, window.cycles) << "window " << i;

        cycles += window.cycles;
        instructions += window.instructions;
        uops += window.uops;
        fused += window.fusedPairs;
    }

    // The series tiles the whole run: everything sums back to the
    // run-level aggregates, including each cpi.* stack entry.
    EXPECT_EQ(cycles, result.cycles);
    EXPECT_EQ(cycles, profile.totalCycles);
    EXPECT_EQ(instructions, result.instructions);
    EXPECT_EQ(uops, result.stat("commit.uops"));
    EXPECT_EQ(fused, profile.fusedPairs());
    for (const auto &[category, count] : cpi)
        EXPECT_EQ(count, result.stat(category)) << category;
}

TEST(Profiler, ZeroIntervalMeansNoTimeSeries)
{
    const RunResult result =
        profiledRun("crc32", FusionMode::Helios, /*window_cycles=*/0);
    EXPECT_EQ(result.profile.windowCycles, 0u);
    EXPECT_TRUE(result.profile.windows.empty());
    // The per-site aggregates are unaffected by the sampling knob.
    EXPECT_GT(result.profile.sites.size(), 0u);
    EXPECT_GT(result.profile.fusedPairs(), 0u);
}

// ---------------------------------------------------------------------
// RunReport schema (profile section, v2+)
// ---------------------------------------------------------------------

TEST(Profiler, ProfileRoundTripsThroughReportSchema)
{
    RunReportFile file;
    file.generator = "test_profiler";
    for (FusionMode mode : {FusionMode::None, FusionMode::Helios})
        file.add(profiledRun("qsort", mode, /*window_cycles=*/750),
                 smokeBudget);

    const JsonValue json = file.toJson();
    EXPECT_EQ(json.at("version").asUint(), kRunReportVersion);
    EXPECT_TRUE(json.at("runs").at(0).has("profile"));

    const std::string text = file.toJsonText();
    const RunReportFile parsed = RunReportFile::fromJsonText(text);
    EXPECT_EQ(parsed, file);
    EXPECT_EQ(parsed.toJsonText(), text); // second trip bit-identical

    const RunReport *run = parsed.find("qsort", "Helios");
    ASSERT_NE(run, nullptr);
    ASSERT_TRUE(run->profiled);
    EXPECT_EQ(run->profile, file.find("qsort", "Helios")->profile);
    EXPECT_GT(run->profile.windows.size(), 0u);
}

TEST(Profiler, VersionOneReportsStillParse)
{
    // A v1 file is exactly a v2 file without profile sections; the
    // loader accepts anything up to the current schema version.
    RunReportFile file;
    file.generator = "test_profiler";
    CoreParams params = CoreParams::icelake(FusionMode::Helios);
    file.add(runOne(findWorkload("crc32"), params, smokeBudget),
             smokeBudget);

    JsonValue json = file.toJson();
    EXPECT_FALSE(json.at("runs").at(0).has("profile"));
    json.set("version", JsonValue(uint64_t{1}));

    const RunReportFile parsed = RunReportFile::fromJson(json);
    EXPECT_EQ(parsed.version, 1u);
    const RunReport *run = parsed.find("crc32", "Helios");
    ASSERT_NE(run, nullptr);
    EXPECT_FALSE(run->profiled);
}

// ---------------------------------------------------------------------
// Annotated disassembly
// ---------------------------------------------------------------------

TEST(Annotate, TextAndJsonForEveryWorkload)
{
    for (const char *name : someWorkloads) {
        const RunResult result = profiledRun(name, FusionMode::Helios);
        const Program program = findWorkload(name).program();

        const std::vector<AnnotatedLine> lines =
            annotateLines(result.profile, program);
        ASSERT_EQ(lines.size(), program.numInsts()) << name;
        size_t profiled = 0;
        for (size_t i = 0; i < lines.size(); ++i) {
            EXPECT_EQ(lines[i].pc, program.textBase + 4 * i) << name;
            EXPECT_FALSE(lines[i].disasm.empty()) << name;
            if (lines[i].profiled) {
                ++profiled;
                EXPECT_GT(lines[i].site.executions, 0u) << name;
            }
        }
        EXPECT_GT(profiled, 0u) << name;

        const std::string text =
            annotateText(result.profile, program, 5);
        EXPECT_NE(text.find("annotated disassembly"),
                  std::string::npos)
            << name;
        EXPECT_NE(text.find("fused pairs"), std::string::npos) << name;

        // The JSON form survives a dump -> parse trip and carries one
        // entry per text line.
        const JsonValue json =
            annotateJson(result.profile, program, 5);
        const JsonValue reparsed = JsonValue::parse(json.dump(2));
        EXPECT_EQ(reparsed, json) << name;
        EXPECT_EQ(reparsed.at("schema").asString(), "helios-annotate")
            << name;
        EXPECT_EQ(reparsed.at("lines").size(), program.numInsts())
            << name;
        EXPECT_EQ(reparsed.at("total_cycles").asUint(), result.cycles)
            << name;
    }
}
