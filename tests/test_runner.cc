/**
 * @file
 * Harness throughput-layer tests: the parallel run matrix must be
 * bit-identical to sequential runs, the streaming trace API must
 * yield exactly the functionalTrace() stream, and the Hart's
 * pre-decoded program cache must not change architectural results —
 * including under self-modifying code.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "harness/analysis.hh"
#include "harness/runner.hh"
#include "isa/encoder.hh"
#include "sim/hart.hh"
#include "workloads/workloads.hh"

using namespace helios;

namespace
{

const char *matrixWorkloads[] = {"605.mcf_s", "crc32", "fft"};
const FusionMode matrixModes[] = {FusionMode::None, FusionMode::CsfSbr,
                                  FusionMode::Helios};

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.uops, b.uops);
    // Every stat counter must match: the parallel schedule may not
    // leak into any observable number.
    EXPECT_EQ(a.stats.dump(), b.stats.dump())
        << a.workload << "/" << fusionModeName(a.mode);
}

/** RAII environment-variable override for the env-parsing tests. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            hadOld = true;
            oldValue = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(name, oldValue.c_str(), 1);
        else
            ::unsetenv(name);
    }

  private:
    const char *name;
    bool hadOld = false;
    std::string oldValue;
};

} // namespace

TEST(RunMatrix, MatchesSequentialRuns)
{
    const uint64_t budget = 20'000;
    std::vector<MatrixCell> cells;
    std::vector<RunResult> sequential;
    for (const char *name : matrixWorkloads) {
        const Workload &workload = findWorkload(name);
        for (FusionMode mode : matrixModes) {
            cells.emplace_back(workload, mode, budget);
            sequential.push_back(runOne(workload, mode, budget));
        }
    }

    // Multiple workers on purpose, even on a single-core host: the
    // interleaving must not be observable.
    const std::vector<RunResult> parallel = runMatrix(cells, 4);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t i = 0; i < parallel.size(); ++i)
        expectSameResult(parallel[i], sequential[i]);
}

TEST(RunMatrix, SingleJobMatchesToo)
{
    const Workload &workload = findWorkload("crc32");
    std::vector<MatrixCell> cells = {
        {workload, FusionMode::Helios, 10'000}};
    const auto results = runMatrix(cells, 1);
    ASSERT_EQ(results.size(), 1u);
    expectSameResult(results[0],
                     runOne(workload, FusionMode::Helios, 10'000));
}

TEST(RunMatrix, PropagatesWorkerErrors)
{
    Workload broken;
    broken.name = "broken";
    broken.suite = Suite::MiBench;
    broken.source = "this is not assembly";
    std::vector<MatrixCell> cells = {
        {broken, FusionMode::None, 1'000},
        {broken, FusionMode::None, 1'000}};
    EXPECT_THROW(runMatrix(cells, 2), FatalError);
}

TEST(StreamingTrace, MatchesFunctionalTrace)
{
    for (const char *name : {"605.mcf_s", "qsort"}) {
        const Workload &workload = findWorkload(name);
        const uint64_t budget = 15'000;
        const std::vector<DynInst> trace =
            functionalTrace(workload, budget);

        std::vector<DynInst> streamed;
        const uint64_t executed = forEachDynInst(
            workload, budget,
            [&](const DynInst &dyn) { streamed.push_back(dyn); });

        ASSERT_EQ(executed, trace.size()) << name;
        ASSERT_EQ(streamed.size(), trace.size()) << name;
        for (size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(streamed[i].seq, trace[i].seq);
            EXPECT_EQ(streamed[i].pc, trace[i].pc);
            EXPECT_TRUE(streamed[i].inst == trace[i].inst);
            EXPECT_EQ(streamed[i].nextPc, trace[i].nextPc);
            EXPECT_EQ(streamed[i].effAddr, trace[i].effAddr);
            EXPECT_EQ(streamed[i].taken, trace[i].taken);
        }
    }
}

TEST(StreamingTrace, AccumulatorsMatchVectorAnalyses)
{
    const Workload &workload = findWorkload("dijkstra");
    const uint64_t budget = 30'000;
    const std::vector<DynInst> trace = functionalTrace(workload, budget);

    IdiomAccumulator idioms;
    CsfCategoryAccumulator csf;
    NcsfPotentialAccumulator ncsf;
    forEachDynInst(workload, budget, [&](const DynInst &dyn) {
        idioms.add(dyn);
        csf.add(dyn);
        ncsf.add(dyn);
    });

    const IdiomStats vi = analyzeIdioms(trace);
    EXPECT_EQ(idioms.stats().totalUops, vi.totalUops);
    EXPECT_EQ(idioms.stats().memoryPairUops, vi.memoryPairUops);
    EXPECT_EQ(idioms.stats().otherPairUops, vi.otherPairUops);

    const CsfCategoryStats vc = analyzeCsfCategories(trace);
    EXPECT_EQ(csf.stats().contiguous, vc.contiguous);
    EXPECT_EQ(csf.stats().overlapping, vc.overlapping);
    EXPECT_EQ(csf.stats().sameLine, vc.sameLine);
    EXPECT_EQ(csf.stats().nextLine, vc.nextLine);

    const NcsfPotentialStats vn = analyzeNcsfPotential(trace);
    EXPECT_EQ(ncsf.stats().csfSbr, vn.csfSbr);
    EXPECT_EQ(ncsf.stats().csfDbr, vn.csfDbr);
    EXPECT_EQ(ncsf.stats().ncsfSbr, vn.ncsfSbr);
    EXPECT_EQ(ncsf.stats().ncsfDbr, vn.ncsfDbr);
    EXPECT_EQ(ncsf.stats().asymmetric, vn.asymmetric);
}

TEST(DecodeCache, PreservesArchitecturalResults)
{
    // Every seed workload must produce identical architectural state
    // with and without the pre-decoded program cache.
    for (const Workload &workload : allWorkloads()) {
        const Program program = workload.program();

        Memory mem_cached;
        Hart cached(mem_cached);
        ASSERT_TRUE(cached.decodeCacheEnabled());
        cached.reset(program);
        EXPECT_EQ(cached.decodeCacheSize(), program.code.size());
        cached.run(40'000'000);

        Memory mem_plain;
        Hart plain(mem_plain);
        plain.setDecodeCacheEnabled(false);
        plain.reset(program);
        EXPECT_EQ(plain.decodeCacheSize(), 0u);
        plain.run(40'000'000);

        ASSERT_TRUE(cached.exited()) << workload.name;
        ASSERT_TRUE(plain.exited()) << workload.name;
        EXPECT_EQ(cached.exitCode(), plain.exitCode()) << workload.name;
        EXPECT_EQ(cached.instsExecuted(), plain.instsExecuted())
            << workload.name;
        EXPECT_EQ(cached.output(), plain.output()) << workload.name;
        for (unsigned reg = 0; reg < numArchRegs; ++reg)
            EXPECT_EQ(cached.reg(reg), plain.reg(reg))
                << workload.name << " x" << reg;
    }
}

TEST(DecodeCache, InvalidatedBySelfModifyingCode)
{
    // The program overwrites the `addi a0, a0, 1` at `patch:` with
    // `addi a0, a0, 7` before executing it; a stale decode cache
    // would still add 1.
    Instruction add7;
    add7.op = Op::Addi;
    add7.rd = RegA0;
    add7.rs1 = RegA0;
    add7.imm = 7;
    const uint32_t word = encode(add7);

    const std::string source = workload_detail::substitute(R"(
        li a0, 0
        la t0, patch
        li t1, {WORD}
        sw t1, 0(t0)
    patch:
        addi a0, a0, 1
        li a7, 93
        ecall
    )",
                                          "WORD", word);

    for (bool cache : {true, false}) {
        Memory mem;
        Hart hart(mem);
        hart.setDecodeCacheEnabled(cache);
        hart.reset(assemble(source));
        hart.run(1'000);
        ASSERT_TRUE(hart.exited());
        EXPECT_EQ(hart.exitCode(), 7u)
            << (cache ? "cached" : "uncached");
    }
}

TEST(Geomean, SkipsNonPositiveValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    // A zero ratio (e.g. a zero-IPC run) must not poison the mean
    // with -inf.
    EXPECT_DOUBLE_EQ(geomean({0.0, 2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0, 5.0}), 5.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
}

TEST(BenchBudget, ValidatesEnvironment)
{
    {
        ScopedEnv env("HELIOS_MAX_INSTS", nullptr);
        EXPECT_EQ(benchInstructionBudget(), 200'000u);
    }
    {
        ScopedEnv env("HELIOS_MAX_INSTS", "123456");
        EXPECT_EQ(benchInstructionBudget(), 123'456u);
    }
    {
        ScopedEnv env("HELIOS_MAX_INSTS", "0x100");
        EXPECT_EQ(benchInstructionBudget(), 256u);
    }
    for (const char *bad : {"", "garbage", "12moo", "0", "-5"}) {
        ScopedEnv env("HELIOS_MAX_INSTS", bad);
        EXPECT_THROW(benchInstructionBudget(), FatalError)
            << "HELIOS_MAX_INSTS='" << bad << "'";
    }
}

TEST(JobCount, ValidatesEnvironment)
{
    {
        ScopedEnv env("HELIOS_JOBS", nullptr);
        EXPECT_GE(defaultJobCount(), 1u);
    }
    {
        ScopedEnv env("HELIOS_JOBS", "3");
        EXPECT_EQ(defaultJobCount(), 3u);
    }
    for (const char *bad : {"", "many", "0", "1e4"}) {
        ScopedEnv env("HELIOS_JOBS", bad);
        EXPECT_THROW(defaultJobCount(), FatalError)
            << "HELIOS_JOBS='" << bad << "'";
    }
}
