/**
 * @file
 * RV64IM conformance suite over the real-binary ELF frontend.
 *
 * Every case is a directed, self-checking kernel targeting one
 * instruction (or one architectural edge of it): the expected value
 * is computed by hand from the ISA manual, never by running the
 * simulator. Each kernel is assembled in-process, packed into a
 * static ELF64 image (harness/elf_image.hh), re-loaded through the
 * real ELF loader, and executed to its exit ecall through BOTH
 * execution engines — the reference step() loop and the fast-forward
 * decoder-cache engine — which must agree on the exit code and on the
 * final architectural/memory checksums.
 *
 * Set HELIOS_CONFORMANCE_OUT=<path> to write a machine-readable JSON
 * report of every case (name, expected/actual, per-engine checksums);
 * CI uploads it as an artifact.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "harness/elf_image.hh"
#include "sim/elf_loader.hh"
#include "sim/hart.hh"
#include "sim/memory.hh"

using namespace helios;

namespace
{

struct ConformanceCase
{
    const char *name;  ///< gtest-safe identifier, e.g. "div_overflow"
    const char *text;  ///< kernel body; leaves the result in a0
    const char *data = "";   ///< optional .data section body
    uint64_t expected = 0;   ///< architected a0 at the exit ecall
};

/** One engine's observables at the exit ecall. */
struct EngineState
{
    bool exited = false;
    uint64_t exitCode = 0;
    uint64_t archChecksum = 0;
    uint64_t memChecksum = 0;
    uint64_t instructions = 0;
};

/** Result row for the optional JSON report. */
struct CaseResult
{
    std::string name;
    uint64_t expected = 0;
    EngineState reference;
    EngineState fast;
    bool passed = false;
};

/** Assemble the case and pack it through the real ELF frontend. */
Program
buildCase(const ConformanceCase &c)
{
    std::string source = std::string(c.text) +
                         "\n    li a7, 93\n    ecall\n";
    if (c.data && *c.data)
        source += std::string("    .data\n") + c.data + "\n";
    const Program assembled = assemble(source);
    return loadElf(buildElfImage(assembled));
}

EngineState
runEngine(const Program &prog, bool fast)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(prog);
    EngineState state;
    state.instructions = fast ? hart.runFast() : hart.run();
    state.exited = hart.exited();
    state.exitCode = hart.exitCode();
    state.archChecksum = hart.archChecksum();
    state.memChecksum = mem.checksum();
    return state;
}

// The directed corpus. Expected values come straight from the RV64IM
// semantics: *W ops operate on the low 32 bits and sign-extend,
// shifts mask to 6 (5 for *W) bits, division follows the
// divide-by-zero / signed-overflow table in the M extension.
const ConformanceCase kCases[] = {
    // ---- RV64I arithmetic --------------------------------------------
    {"add_basic", R"(
        li a0, 5
        li t0, 7
        add a0, a0, t0)", "", 12},
    {"add_wraps_to_zero", R"(
        li a0, -1
        li t0, 1
        add a0, a0, t0)", "", 0},
    {"sub_negative_result", R"(
        li a0, 5
        li t0, 7
        sub a0, a0, t0)", "", 0xfffffffffffffffeULL},
    {"addi_min_immediate", R"(
        li a0, 0
        addi a0, a0, -2048)", "", 0xfffffffffffff800ULL},
    {"addw_overflow_sign_extends", R"(
        li a0, 0x7fffffff
        li t0, 1
        addw a0, a0, t0)", "", 0xffffffff80000000ULL},
    {"addiw_truncates_to_32", R"(
        li a0, 1
        slli a0, a0, 32
        addiw a0, a0, 5)", "", 5},
    {"subw_borrows_into_sign", R"(
        li a0, 0
        li t0, 1
        subw a0, a0, t0)", "", 0xffffffffffffffffULL},
    {"lui_sign_extends", R"(
        lui a0, -524288)", "", 0xffffffff80000000ULL},
    {"auipc_matches_label", R"(
    here:
        auipc a0, 0
        la t0, here
        sub a0, a0, t0)", "", 0},

    // ---- logic -------------------------------------------------------
    {"and_masks", R"(
        li a0, 0xff0f
        li t0, 0x0ff0
        and a0, a0, t0)", "", 0x0f00},
    {"or_merges", R"(
        li a0, 0xf000
        li t0, 0x000f
        or a0, a0, t0)", "", 0xf00f},
    {"xor_self_is_zero", R"(
        li a0, 0x1234
        xor a0, a0, a0)", "", 0},
    {"xori_not_idiom", R"(
        li a0, 0
        xori a0, a0, -1)", "", 0xffffffffffffffffULL},
    {"andi_sign_extended_mask", R"(
        li a0, 0x1ff
        andi a0, a0, -16)", "", 0x1f0},
    {"ori_sign_extended", R"(
        li a0, 0
        ori a0, a0, -2048)", "", 0xfffffffffffff800ULL},

    // ---- comparisons -------------------------------------------------
    {"slt_signed_negative", R"(
        li t0, -1
        li t1, 1
        slt a0, t0, t1)", "", 1},
    {"sltu_unsigned_negative", R"(
        li t0, -1
        li t1, 1
        sltu a0, t0, t1)", "", 0},
    {"slti_boundary", R"(
        li t0, -2049
        slti a0, t0, -2048)", "", 1},
    {"sltiu_max_immediate", R"(
        li t0, 0
        sltiu a0, t0, -1)", "", 1},

    // ---- shifts ------------------------------------------------------
    {"slli_to_top_bit", R"(
        li a0, 1
        slli a0, a0, 63)", "", 0x8000000000000000ULL},
    {"srli_from_top_bit", R"(
        li a0, 1
        slli a0, a0, 63
        srli a0, a0, 63)", "", 1},
    {"srai_keeps_sign", R"(
        li a0, -16
        srai a0, a0, 2)", "", 0xfffffffffffffffcULL},
    {"sll_amount_masked_mod_64", R"(
        li a0, 3
        li t0, 64
        sll a0, a0, t0)", "", 3},
    {"srl_register_amount", R"(
        li a0, 1
        slli a0, a0, 63
        li t0, 63
        srl a0, a0, t0)", "", 1},
    {"sra_register_amount", R"(
        li a0, -64
        li t0, 3
        sra a0, a0, t0)", "", 0xfffffffffffffff8ULL},
    {"sllw_sign_extends_bit31", R"(
        li a0, 1
        li t0, 31
        sllw a0, a0, t0)", "", 0xffffffff80000000ULL},
    {"srlw_ignores_upper_word", R"(
        li a0, 1
        slli a0, a0, 63
        ori a0, a0, 0x700
        li t0, 8
        srlw a0, a0, t0)", "", 7},
    {"sraw_shifts_low_word_sign", R"(
        li a0, 1
        slli a0, a0, 31
        li t0, 31
        sraw a0, a0, t0)", "", 0xffffffffffffffffULL},
    {"sllw_amount_masked_mod_32", R"(
        li a0, 5
        li t0, 32
        sllw a0, a0, t0)", "", 5},

    // ---- M extension: multiply ---------------------------------------
    {"mul_basic", R"(
        li a0, 7
        li t0, 6
        mul a0, a0, t0)", "", 42},
    {"mulh_negative_operands", R"(
        li t0, -2
        li t1, 3
        mulh a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"mulhu_all_ones", R"(
        li t0, -1
        li t1, -1
        mulhu a0, t0, t1)", "", 0xfffffffffffffffeULL},
    {"mulhsu_mixed_sign", R"(
        li t0, -1
        li t1, 2
        mulhsu a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"mulw_wraps_and_sign_extends", R"(
        li t0, 0x7fffffff
        li t1, 2
        mulw a0, t0, t1)", "", 0xfffffffffffffffeULL},

    // ---- M extension: divide / remainder -----------------------------
    {"div_truncates_toward_zero", R"(
        li t0, -7
        li t1, 2
        div a0, t0, t1)", "", 0xfffffffffffffffdULL},
    {"div_by_zero_returns_minus_one", R"(
        li t0, 42
        li t1, 0
        div a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"div_overflow_int64min", R"(
        li t0, 1
        slli t0, t0, 63
        li t1, -1
        div a0, t0, t1)", "", 0x8000000000000000ULL},
    {"divu_by_zero_all_ones", R"(
        li t0, 42
        li t1, 0
        divu a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"rem_sign_follows_dividend", R"(
        li t0, -7
        li t1, 2
        rem a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"rem_by_zero_returns_dividend", R"(
        li t0, 42
        li t1, 0
        rem a0, t0, t1)", "", 42},
    {"rem_overflow_is_zero", R"(
        li t0, 1
        slli t0, t0, 63
        li t1, -1
        rem a0, t0, t1)", "", 0},
    {"remu_basic", R"(
        li t0, 43
        li t1, 5
        remu a0, t0, t1)", "", 3},
    {"divw_overflow_int32min", R"(
        li t0, 1
        slli t0, t0, 31
        li t1, -1
        divw a0, t0, t1)", "", 0xffffffff80000000ULL},
    {"divuw_by_zero_sign_extends", R"(
        li t0, 7
        li t1, 0
        divuw a0, t0, t1)", "", 0xffffffffffffffffULL},
    {"remw_by_zero_sign_extends_dividend", R"(
        li t0, 1
        slli t0, t0, 31
        li t1, 0
        remw a0, t0, t1)", "", 0xffffffff80000000ULL},
    {"remuw_ignores_upper_word", R"(
        li t0, 1
        slli t0, t0, 32
        ori t0, t0, 43
        li t1, 5
        remuw a0, t0, t1)", "", 3},

    // ---- loads / stores ----------------------------------------------
    {"sb_lb_sign_extends", R"(
        la t0, buf
        li t1, 0x80
        sb t1, 0(t0)
        lb a0, 0(t0))", "buf: .dword 0", 0xffffffffffffff80ULL},
    {"lbu_zero_extends", R"(
        la t0, buf
        li t1, 0x80
        sb t1, 0(t0)
        lbu a0, 0(t0))", "buf: .dword 0", 0x80},
    {"sh_lh_sign_extends", R"(
        la t0, buf
        li t1, 0x8001
        sh t1, 2(t0)
        lh a0, 2(t0))", "buf: .dword 0", 0xffffffffffff8001ULL},
    {"lhu_zero_extends", R"(
        la t0, buf
        li t1, 0x8001
        sh t1, 2(t0)
        lhu a0, 2(t0))", "buf: .dword 0", 0x8001},
    {"sw_lw_sign_extends", R"(
        la t0, buf
        li t1, 1
        slli t1, t1, 31
        sw t1, 4(t0)
        lw a0, 4(t0))", "buf: .dword 0, 0", 0xffffffff80000000ULL},
    {"lwu_zero_extends", R"(
        la t0, buf
        li t1, 1
        slli t1, t1, 31
        sw t1, 4(t0)
        lwu a0, 4(t0))", "buf: .dword 0, 0", 0x80000000ULL},
    {"sd_ld_roundtrip", R"(
        la t0, buf
        li t1, -2
        sd t1, 8(t0)
        ld a0, 8(t0))", "buf: .dword 0, 0", 0xfffffffffffffffeULL},
    {"byte_stores_little_endian", R"(
        la t0, buf
        li t1, 0x11
        sb t1, 0(t0)
        li t1, 0x22
        sb t1, 1(t0)
        li t1, 0x33
        sb t1, 2(t0)
        li t1, 0x44
        sb t1, 3(t0)
        lw a0, 0(t0))", "buf: .dword 0", 0x44332211},
    {"preinitialized_data_load", R"(
        la t0, vals
        ld a0, 0(t0)
        ld t1, 8(t0)
        add a0, a0, t1)",
     "vals: .dword 40, 2", 42},

    // ---- control flow ------------------------------------------------
    {"beq_taken", R"(
        li a0, 1
        li t0, 3
        li t1, 3
        beq t0, t1, over
        li a0, 99
    over:)", "", 1},
    {"bne_not_taken", R"(
        li a0, 1
        li t0, 3
        li t1, 3
        bne t0, t1, over
        li a0, 2
    over:)", "", 2},
    {"blt_signed_negative", R"(
        li a0, 0
        li t0, -1
        li t1, 1
        blt t0, t1, over
        li a0, 99
    over:
        addi a0, a0, 1)", "", 1},
    {"bge_equal_is_taken", R"(
        li a0, 1
        li t0, 5
        li t1, 5
        bge t0, t1, over
        li a0, 99
    over:)", "", 1},
    {"bltu_minus_one_is_max", R"(
        li a0, 0
        li t0, -1
        li t1, 1
        bltu t0, t1, poison
        li a0, 7
        beq zero, zero, over
    poison:
        li a0, 99
    over:)", "", 7},
    {"bgeu_wraps_unsigned", R"(
        li a0, 0
        li t0, -1
        li t1, 1
        bgeu t0, t1, over
        li a0, 99
    over:
        addi a0, a0, 3)", "", 3},
    {"jal_skips_poison", R"(
        li a0, 1
        jal ra, over
        li a0, 99
    over:
        addi a0, a0, 1)", "", 2},
    {"jal_links_return_address", R"(
        jal ra, over
    link:
        li a0, 99
        beq zero, zero, done
    over:
        la t0, link
        sub a0, ra, t0
    done:)", "", 0},
    {"jalr_clears_low_bit", R"(
        la t0, over
        addi t0, t0, 1
        li a0, 0
        jalr ra, t0, 0
        li a0, 99
    over:
        addi a0, a0, 5)", "", 5},
    {"loop_sums_one_to_ten", R"(
        li a0, 0
        li t0, 10
    loop:
        add a0, a0, t0
        addi t0, t0, -1
        bnez t0, loop)", "", 55},
};

/** Run one case through both engines; no gtest assertions. */
CaseResult
evaluateCase(const ConformanceCase &c)
{
    const Program prog = buildCase(c);
    CaseResult row;
    row.name = c.name;
    row.expected = c.expected;
    row.reference = runEngine(prog, false);
    row.fast = runEngine(prog, true);
    row.passed =
        row.reference.exited && row.fast.exited &&
        row.reference.exitCode == c.expected &&
        row.fast.exitCode == row.reference.exitCode &&
        row.fast.archChecksum == row.reference.archChecksum &&
        row.fast.memChecksum == row.reference.memChecksum &&
        row.fast.instructions == row.reference.instructions;
    return row;
}

class Conformance : public ::testing::TestWithParam<ConformanceCase>
{};

} // namespace

TEST_P(Conformance, BothEnginesMatchGolden)
{
    const ConformanceCase &c = GetParam();
    const CaseResult row = evaluateCase(c);

    // Reference engine against the hand-computed golden value.
    EXPECT_TRUE(row.reference.exited) << c.name;
    EXPECT_EQ(row.reference.exitCode, c.expected) << c.name;

    // Fast engine must be bit-identical to the reference.
    EXPECT_TRUE(row.fast.exited) << c.name;
    EXPECT_EQ(row.fast.exitCode, row.reference.exitCode) << c.name;
    EXPECT_EQ(row.fast.archChecksum, row.reference.archChecksum)
        << c.name;
    EXPECT_EQ(row.fast.memChecksum, row.reference.memChecksum)
        << c.name;
    EXPECT_EQ(row.fast.instructions, row.reference.instructions)
        << c.name;
    EXPECT_TRUE(row.passed) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Rv64im, Conformance, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<ConformanceCase> &info) {
        return std::string(info.param.name);
    });

/**
 * When HELIOS_CONFORMANCE_OUT names a file, evaluate the whole corpus
 * (independently of gtest's test ordering) and dump every case as
 * JSON for the CI artifact.
 */
TEST(ConformanceReport, WriteJsonWhenRequested)
{
    const char *path = std::getenv("HELIOS_CONFORMANCE_OUT");
    if (!path || !*path)
        GTEST_SKIP() << "HELIOS_CONFORMANCE_OUT not set";

    std::vector<CaseResult> rows;
    for (const ConformanceCase &c : kCases)
        rows.push_back(evaluateCase(c));
    ASSERT_FALSE(rows.empty());

    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot open " << path;

    size_t passed = 0;
    for (const CaseResult &row : rows)
        passed += row.passed;

    out << "{\n  \"suite\": \"rv64im-conformance\",\n"
        << "  \"cases\": " << rows.size() << ",\n"
        << "  \"passed\": " << passed << ",\n  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const CaseResult &row = rows[i];
        out << "    {\"name\": \"" << row.name << "\""
            << ", \"passed\": " << (row.passed ? "true" : "false")
            << ", \"expected\": " << row.expected
            << ", \"reference_exit\": " << row.reference.exitCode
            << ", \"fast_exit\": " << row.fast.exitCode
            << ", \"arch_checksum\": " << row.reference.archChecksum
            << ", \"mem_checksum\": " << row.reference.memChecksum
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    ASSERT_TRUE(out.good());

    // Every case must pass when the suite itself is green; make the
    // artifact writer fail loudly if the corpus disagrees.
    EXPECT_EQ(passed, rows.size());
}
