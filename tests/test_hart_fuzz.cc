/**
 * @file
 * Differential fuzzing of the functional simulator: random
 * straight-line integer programs are executed by the Hart and by an
 * independent evaluator written directly from the RV64IM
 * specification; the architectural register files must agree.
 */

#include <array>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/random.hh"
#include "isa/disasm.hh"
#include "sim/hart.hh"

using namespace helios;

namespace
{

/** Independent RV64IM ALU semantics (no memory, no control flow). */
uint64_t
evaluate(Op op, uint64_t a, uint64_t b, int64_t imm)
{
    const auto s = [](uint64_t v) { return int64_t(v); };
    const auto w = [](uint64_t v) {
        return uint64_t(int64_t(int32_t(v)));
    };
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Sll: return a << (b & 63);
      case Op::Slt: return s(a) < s(b);
      case Op::Sltu: return a < b;
      case Op::Xor: return a ^ b;
      case Op::Srl: return a >> (b & 63);
      case Op::Sra: return uint64_t(s(a) >> (b & 63));
      case Op::Or: return a | b;
      case Op::And: return a & b;
      case Op::Addw: return w(a + b);
      case Op::Subw: return w(a - b);
      case Op::Sllw: return w(a << (b & 31));
      case Op::Srlw: return w(uint32_t(a) >> (b & 31));
      case Op::Sraw: return uint64_t(int64_t(int32_t(a) >> (b & 31)));
      case Op::Mul: return a * b;
      case Op::Mulh:
        return uint64_t((__int128(s(a)) * __int128(s(b))) >> 64);
      case Op::Mulhu:
        return uint64_t(((unsigned __int128)a *
                         (unsigned __int128)b) >> 64);
      case Op::Mulhsu:
        return uint64_t((__int128(s(a)) * (unsigned __int128)b) >> 64);
      case Op::Mulw: return w(a * b);
      case Op::Div:
        if (b == 0)
            return ~0ULL;
        if (s(a) == INT64_MIN && s(b) == -1)
            return a;
        return uint64_t(s(a) / s(b));
      case Op::Divu: return b ? a / b : ~0ULL;
      case Op::Rem:
        if (b == 0)
            return a;
        if (s(a) == INT64_MIN && s(b) == -1)
            return 0;
        return uint64_t(s(a) % s(b));
      case Op::Remu: return b ? a % b : a;
      case Op::Divw: {
        const int32_t da = int32_t(a), db = int32_t(b);
        if (db == 0)
            return ~0ULL;
        if (da == INT32_MIN && db == -1)
            return w(uint32_t(da));
        return uint64_t(int64_t(da / db));
      }
      case Op::Divuw: {
        const uint32_t da = uint32_t(a), db = uint32_t(b);
        return db ? w(da / db) : ~0ULL;
      }
      case Op::Remw: {
        const int32_t da = int32_t(a), db = int32_t(b);
        if (db == 0)
            return w(a);
        if (da == INT32_MIN && db == -1)
            return 0;
        return uint64_t(int64_t(da % db));
      }
      case Op::Remuw: {
        const uint32_t da = uint32_t(a), db = uint32_t(b);
        return db ? w(da % db) : w(a);
      }
      case Op::Addi: return a + uint64_t(imm);
      case Op::Slti: return s(a) < imm;
      case Op::Sltiu: return a < uint64_t(imm);
      case Op::Xori: return a ^ uint64_t(imm);
      case Op::Ori: return a | uint64_t(imm);
      case Op::Andi: return a & uint64_t(imm);
      case Op::Slli: return a << (imm & 63);
      case Op::Srli: return a >> (imm & 63);
      case Op::Srai: return uint64_t(s(a) >> (imm & 63));
      case Op::Addiw: return w(a + uint64_t(imm));
      case Op::Slliw: return w(a << (imm & 31));
      case Op::Srliw: return w(uint32_t(a) >> (imm & 31));
      case Op::Sraiw:
        return uint64_t(int64_t(int32_t(a) >> (imm & 31)));
      default:
        ADD_FAILURE() << "unexpected op";
        return 0;
    }
}

const Op aluOps[] = {
    Op::Add,  Op::Sub,   Op::Sll,   Op::Slt,   Op::Sltu, Op::Xor,
    Op::Srl,  Op::Sra,   Op::Or,    Op::And,   Op::Addw, Op::Subw,
    Op::Sllw, Op::Srlw,  Op::Sraw,  Op::Mul,   Op::Mulh, Op::Mulhu,
    Op::Mulhsu, Op::Mulw, Op::Div,  Op::Divu,  Op::Rem,  Op::Remu,
    Op::Divw, Op::Divuw, Op::Remw,  Op::Remuw, Op::Addi, Op::Slti,
    Op::Sltiu, Op::Xori, Op::Ori,   Op::Andi,  Op::Slli, Op::Srli,
    Op::Srai, Op::Addiw, Op::Slliw, Op::Srliw, Op::Sraiw,
};

class HartFuzz : public ::testing::TestWithParam<unsigned>
{};

} // namespace

TEST_P(HartFuzz, RandomAluProgramMatchesEvaluator)
{
    Rng rng(GetParam() * 2654435761u + 17);

    // Model register file (x0 fixed at zero).
    std::array<uint64_t, numArchRegs> regs{};
    std::string source;

    // Seed registers x1..x15 with random 64-bit values via li.
    for (unsigned r = 1; r <= 15; ++r) {
        regs[r] = rng.next();
        source += "li " + regName(r) + ", " +
                  std::to_string(int64_t(regs[r])) + "\n";
    }

    // 200 random ALU instructions over x1..x31.
    for (int i = 0; i < 200; ++i) {
        const Op op = aluOps[rng.below(std::size(aluOps))];
        const OpInfo &info = opInfo(op);
        Instruction inst;
        inst.op = op;
        inst.rd = uint8_t(rng.range(1, 31));
        inst.rs1 = uint8_t(rng.below(32));
        if (info.readsRs2) {
            inst.rs2 = uint8_t(rng.below(32));
        } else if (op == Op::Slli || op == Op::Srli || op == Op::Srai) {
            inst.imm = rng.range(0, 63);
        } else if (op == Op::Slliw || op == Op::Srliw ||
                   op == Op::Sraiw) {
            inst.imm = rng.range(0, 31);
        } else {
            inst.imm = rng.range(-2048, 2047);
        }
        source += disassemble(inst) + "\n";
        regs[inst.rd] =
            evaluate(op, regs[inst.rs1], regs[inst.rs2], inst.imm);
    }
    source += "li a7, 93\nli a0, 0\necall\n";

    Memory memory;
    Hart hart(memory);
    hart.reset(assemble(source));
    hart.run(10'000);
    ASSERT_TRUE(hart.exited());

    // a0/a7 were clobbered by the exit stub; check everything else.
    for (unsigned r = 0; r < numArchRegs; ++r) {
        if (r == RegA0 || r == RegA7)
            continue;
        EXPECT_EQ(hart.reg(r), regs[r]) << "x" << r;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HartFuzz, ::testing::Range(0u, 24u));
