/**
 * @file
 * Telemetry layer: histograms, exact CPI stacks, lifecycle tracing
 * and machine-readable run reports.
 *
 * The load-bearing guarantees under test:
 *  - the exact CPI stack partitions total cycles (residual 0) under
 *    every fusion mode;
 *  - attaching the tracer and histogram sampling changes NOTHING
 *    about the simulation (observer-effect guard: identical
 *    architectural checksum, commit counts and cycle count);
 *  - one lifecycle record per committed µ-op, and both trace export
 *    formats are well-formed;
 *  - RunReport files survive a save → parse round trip bit-exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"
#include "harness/run_report.hh"
#include "harness/runner.hh"
#include "telemetry/lifecycle.hh"

using namespace helios;

namespace
{

constexpr uint64_t smokeBudget = 20'000;

const FusionMode allModes[] = {FusionMode::None,
                               FusionMode::RiscvFusion,
                               FusionMode::CsfSbr,
                               FusionMode::RiscvFusionPP,
                               FusionMode::Helios,
                               FusionMode::Oracle};

RunResult
telemetryRun(const char *workload, FusionMode mode,
             LifecycleTracer *tracer)
{
    CoreParams params = CoreParams::icelake(mode);
    params.tracer = tracer;
    params.sampleHistograms = tracer != nullptr;
    return runOne(findWorkload(workload), params, smokeBudget);
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    Histogram hist({10, 20, 30});
    ASSERT_EQ(hist.numBuckets(), 4u); // 3 bounds + overflow

    hist.addSample(0);   // -> bucket 0 (bound 10)
    hist.addSample(10);  // -> bucket 0 (bounds are inclusive)
    hist.addSample(11);  // -> bucket 1 (bound 20)
    hist.addSample(30);  // -> bucket 2 (bound 30)
    hist.addSample(31);  // -> overflow
    hist.addSample(1000); // -> overflow

    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 1u);
    EXPECT_EQ(hist.bucketCount(3), 2u);
    EXPECT_EQ(hist.bucketBound(0), 10u);
    EXPECT_EQ(hist.bucketBound(3), UINT64_MAX);
    EXPECT_EQ(hist.samples(), 6u);
    EXPECT_EQ(hist.minValue(), 0u);
    EXPECT_EQ(hist.maxValue(), 1000u);
    EXPECT_EQ(hist.sum(), 0u + 10 + 11 + 30 + 31 + 1000);
}

TEST(Histogram, DefaultLayoutIsExponential)
{
    Histogram hist;
    hist.addSample(1);
    hist.addSample(2);
    hist.addSample(3);
    EXPECT_EQ(hist.bucketBound(0), 1u);
    EXPECT_EQ(hist.bucketBound(1), 2u);
    EXPECT_EQ(hist.bucketBound(2), 4u);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 1u); // 3 lands in (2, 4]
}

TEST(Histogram, LinearLayout)
{
    const Histogram layout = Histogram::linear(100, 25);
    EXPECT_EQ(layout.bucketBounds(),
              (std::vector<uint64_t>{25, 50, 75, 100}));
}

TEST(Histogram, WeightedSamplesAndMean)
{
    Histogram hist({4, 8});
    hist.addSample(2, 3); // three samples of value 2
    hist.addSample(8);
    EXPECT_EQ(hist.samples(), 4u);
    EXPECT_EQ(hist.sum(), 14u);
    EXPECT_DOUBLE_EQ(hist.mean(), 14.0 / 4.0);
}

TEST(Histogram, Merge)
{
    Histogram a({4, 8});
    Histogram b({4, 8});
    a.addSample(1);
    a.addSample(5);
    b.addSample(7);
    b.addSample(100);

    a.merge(b);
    EXPECT_EQ(a.samples(), 4u);
    EXPECT_EQ(a.bucketCount(0), 1u);
    EXPECT_EQ(a.bucketCount(1), 2u);
    EXPECT_EQ(a.bucketCount(2), 1u);
    EXPECT_EQ(a.minValue(), 1u);
    EXPECT_EQ(a.maxValue(), 100u);
    EXPECT_EQ(a.sum(), 1u + 5 + 7 + 100);
}

TEST(Histogram, Percentiles)
{
    Histogram hist(Histogram::linear(100, 1));
    for (uint64_t v = 1; v <= 100; ++v)
        hist.addSample(v);
    EXPECT_EQ(hist.percentile(0.50), 50u);
    EXPECT_EQ(hist.percentile(0.90), 90u);
    EXPECT_EQ(hist.percentile(0.99), 99u);
    EXPECT_EQ(hist.percentile(1.00), 100u);

    Histogram empty;
    EXPECT_EQ(empty.percentile(0.5), 0u);
}

TEST(Histogram, PercentileClampsToObservedMax)
{
    Histogram hist({1000});
    hist.addSample(3);
    // The quantile bucket's bound is 1000, but no sample exceeds 3.
    EXPECT_LE(hist.percentile(0.99), 3u);
}

// ---------------------------------------------------------------------
// CpiStack
// ---------------------------------------------------------------------

TEST(CpiStack, AdHocResidual)
{
    CpiStack stack(100);
    stack.addCategory("a", 60);
    stack.addCategory("b", 30);
    EXPECT_EQ(stack.residual(), 10);
    EXPECT_FALSE(stack.exact());
    EXPECT_DOUBLE_EQ(stack.fraction("a"), 0.6);
    EXPECT_EQ(stack.dominant(), "a");

    stack.addCategory("c", 10);
    EXPECT_TRUE(stack.exact());
}

TEST(CpiStack, DoubleAttributionAsserts)
{
    CpiStack stack(100);
    stack.addCategory("cpi.retiring", 60);
    // Adding the same category twice would double-count its cycles
    // and silently break the partition invariant; the debug assert
    // catches it at the source.
    EXPECT_DEATH(stack.addCategory("cpi.retiring", 40),
                 "attributed twice");
}

TEST(CpiStack, PrefixFractions)
{
    CpiStack stack(100);
    stack.addCategory("cpi.exec.load", 20);
    stack.addCategory("cpi.exec.store", 30);
    stack.addCategory("cpi.retiring", 50);
    EXPECT_DOUBLE_EQ(stack.fractionWithPrefix("cpi.exec."), 0.5);
    EXPECT_DOUBLE_EQ(stack.fractionWithPrefix("cpi."), 1.0);
}

TEST(CpiStack, ExactUnderEveryFusionMode)
{
    for (FusionMode mode : allModes) {
        const RunResult result = telemetryRun("qsort", mode, nullptr);
        const CpiStack stack = result.stats.cpiStack(result.cycles);
        EXPECT_EQ(stack.totalCycles(), result.cycles)
            << fusionModeName(mode);
        EXPECT_TRUE(stack.exact())
            << fusionModeName(mode) << " residual "
            << stack.residual();

        uint64_t claimed = 0;
        for (size_t i = 0; i < stack.size(); ++i)
            claimed += stack.cycles(i);
        EXPECT_EQ(claimed, result.cycles) << fusionModeName(mode);
    }
}

// ---------------------------------------------------------------------
// Observer effect and lifecycle tracing
// ---------------------------------------------------------------------

TEST(Telemetry, ObserverEffectGuard)
{
    for (FusionMode mode : allModes) {
        const RunResult plain = telemetryRun("crc32", mode, nullptr);
        LifecycleTracer tracer;
        const RunResult traced = telemetryRun("crc32", mode, &tracer);

        EXPECT_EQ(plain.archChecksum, traced.archChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(plain.memChecksum, traced.memChecksum)
            << fusionModeName(mode);
        EXPECT_EQ(plain.cycles, traced.cycles) << fusionModeName(mode);
        EXPECT_EQ(plain.instructions, traced.instructions)
            << fusionModeName(mode);
        EXPECT_EQ(plain.stat("commit.uops"),
                  traced.stat("commit.uops"))
            << fusionModeName(mode);
        EXPECT_DOUBLE_EQ(plain.ipc(), traced.ipc())
            << fusionModeName(mode);
    }
}

TEST(Telemetry, OneRecordPerCommittedUop)
{
    LifecycleTracer tracer;
    const RunResult result =
        telemetryRun("qsort", FusionMode::Helios, &tracer);

    EXPECT_EQ(tracer.numCommitted(), result.stat("commit.uops"));
    EXPECT_EQ(tracer.numRecords(),
              tracer.numCommitted() + tracer.numSquashed());

    // Committed stamps are monotone through the pipeline.
    size_t fused = 0;
    for (const UopLifecycle &rec : tracer.records()) {
        if (rec.squashed)
            continue;
        EXPECT_LE(rec.fetch, rec.aqInsert);
        EXPECT_LE(rec.aqInsert, rec.rename);
        EXPECT_LE(rec.rename, rec.dispatch);
        EXPECT_LE(rec.dispatch, rec.issue);
        EXPECT_LE(rec.issue, rec.complete);
        EXPECT_LE(rec.complete, rec.retire);
        EXPECT_FALSE(rec.disasm.empty());
        if (rec.fused()) {
            ++fused;
            EXPECT_GT(rec.pairSeq, rec.seq);
            EXPECT_EQ(rec.pairDistance, rec.pairSeq - rec.seq);
            EXPECT_EQ(rec.catalystUops, rec.pairDistance - 1);
        }
    }
    // Helios fuses in qsort; the annotations must show up.
    EXPECT_GT(fused, 0u);

    const uint64_t pairs = result.stat("pairs.csf_mem") +
                           result.stat("pairs.csf_other") +
                           result.stat("pairs.ncsf");
    EXPECT_EQ(fused, pairs);
}

TEST(Telemetry, ChromeTraceIsValidJson)
{
    LifecycleTracer tracer;
    telemetryRun("crc32", FusionMode::Helios, &tracer);

    std::ostringstream out;
    tracer.writeChromeTrace(out);
    const JsonValue trace = JsonValue::parse(out.str());
    const JsonValue &events = trace.at("traceEvents");
    ASSERT_GT(events.size(), 0u);

    size_t spans = 0;
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &event = events.at(i);
        const std::string &phase = event.at("ph").asString();
        if (phase == "X") {
            ++spans;
            EXPECT_TRUE(event.at("dur").asUint() >= 1);
            EXPECT_TRUE(event.has("ts"));
            EXPECT_TRUE(event.at("args").has("seq"));
        }
    }
    EXPECT_GT(spans, tracer.numCommitted());
}

TEST(Telemetry, KonataHeaderAndCommands)
{
    LifecycleTracer tracer;
    telemetryRun("crc32", FusionMode::Helios, &tracer);

    std::ostringstream out;
    tracer.writeKonata(out);
    std::istringstream in(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "Kanata\t0004");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.rfind("C=\t", 0), 0u);

    size_t retires = 0;
    while (std::getline(in, line))
        if (line.rfind("R\t", 0) == 0)
            ++retires;
    EXPECT_EQ(retires, tracer.numRecords());
}

TEST(Telemetry, OccupancyHistogramsSampleEveryCycle)
{
    LifecycleTracer tracer;
    const RunResult result =
        telemetryRun("qsort", FusionMode::Helios, &tracer);

    for (const char *name : {"occupancy.rob", "occupancy.iq",
                             "occupancy.lq", "occupancy.sq"}) {
        const Histogram *hist = result.stats.findHistogram(name);
        ASSERT_NE(hist, nullptr) << name;
        EXPECT_EQ(hist->samples(), result.cycles) << name;
    }
    const Histogram *distance =
        result.stats.findHistogram("fusion.pair_distance");
    ASSERT_NE(distance, nullptr);
    EXPECT_EQ(distance->samples(), result.stat("pairs.ncsf") +
                                       result.stat("pairs.csf_mem") +
                                       result.stat("pairs.csf_other"));
}

// ---------------------------------------------------------------------
// JSON primitives
// ---------------------------------------------------------------------

TEST(Json, RoundTripPreservesExactIntegers)
{
    JsonValue object = JsonValue::object();
    object.set("big", JsonValue(UINT64_MAX));
    object.set("neg", JsonValue(int64_t{-42}));
    object.set("pi", JsonValue(3.25));
    object.set("text", JsonValue(std::string("a\"b\\c\n")));
    JsonValue list = JsonValue::array();
    list.push(JsonValue(true));
    list.push(JsonValue(nullptr));
    object.set("list", std::move(list));

    const JsonValue parsed = JsonValue::parse(object.dump(2));
    EXPECT_EQ(parsed, object);
    EXPECT_EQ(parsed.at("big").asUint(), UINT64_MAX);
    EXPECT_EQ(parsed.at("neg").asInt(), -42);
    EXPECT_EQ(parsed.at("text").asString(), "a\"b\\c\n");
}

TEST(Json, NumericCrossKindEquality)
{
    EXPECT_EQ(JsonValue(uint64_t{5}), JsonValue(5.0));
    EXPECT_NE(JsonValue(uint64_t{5}), JsonValue(5.5));
}

// ---------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------

TEST(RunReport, RoundTripEquality)
{
    LifecycleTracer tracer;
    RunReportFile file;
    file.generator = "test_telemetry";
    for (FusionMode mode : {FusionMode::None, FusionMode::Helios}) {
        const RunResult result = telemetryRun("qsort", mode, &tracer);
        file.add(result, smokeBudget);
    }

    const std::string text = file.toJsonText();
    const RunReportFile parsed = RunReportFile::fromJsonText(text);
    EXPECT_EQ(parsed, file);

    // And a second round trip is bit-identical text.
    EXPECT_EQ(parsed.toJsonText(), text);
}

TEST(RunReport, CarriesStatsHistogramsAndCpiStack)
{
    LifecycleTracer tracer;
    const RunResult result =
        telemetryRun("crc32", FusionMode::Helios, &tracer);
    const RunReport report = makeRunReport(result, smokeBudget);

    EXPECT_EQ(report.mode, "Helios");
    EXPECT_EQ(report.cycles, result.cycles);
    EXPECT_DOUBLE_EQ(report.ipc, result.ipc());
    EXPECT_EQ(report.stats.get("commit.uops"),
              result.stat("commit.uops"));
    EXPECT_NE(report.stats.findHistogram("occupancy.rob"), nullptr);

    const CpiStack stack = report.cpiStack();
    EXPECT_TRUE(stack.exact());
    EXPECT_EQ(stack.totalCycles(), report.cycles);
    EXPECT_GT(report.fusionCoverage(), 0.0);

    const RunReport back = RunReport::fromJson(report.toJson());
    EXPECT_EQ(back, report);
    EXPECT_TRUE(back.cpiStack().exact());
}

TEST(RunReport, FindAndVersionGate)
{
    RunReportFile file;
    const RunResult result =
        telemetryRun("crc32", FusionMode::None, nullptr);
    file.add(result, smokeBudget);

    EXPECT_NE(file.find("crc32", "NoFusion"), nullptr);
    EXPECT_EQ(file.find("crc32", "Helios"), nullptr);
    EXPECT_EQ(file.find("qsort", "NoFusion"), nullptr);

    JsonValue json = file.toJson();
    json.set("version", JsonValue(uint64_t{999}));
    EXPECT_THROW(RunReportFile::fromJson(json), FatalError);

    JsonValue bad = JsonValue::object();
    bad.set("schema", JsonValue(std::string("something-else")));
    EXPECT_THROW(RunReportFile::fromJson(bad), FatalError);
}
