/** @file Functional simulator tests: semantics of RV64IM execution. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "sim/hart.hh"

using namespace helios;

namespace
{

/** Assemble, run to completion and return the exit code (a0). */
uint64_t
runProgram(const std::string &body)
{
    // The exit stub continues the text section even when the body ends
    // inside .data; code emission is contiguous across section switches.
    const std::string source = body + R"(
        .text
        li a7, 93
        ecall
    )";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    hart.run(1'000'000);
    EXPECT_TRUE(hart.exited()) << "program did not exit";
    return hart.exitCode();
}

} // namespace

TEST(Hart, ArithmeticBasics)
{
    EXPECT_EQ(runProgram("li a0, 2\n li a1, 3\n add a0, a0, a1"), 5u);
    EXPECT_EQ(runProgram("li a0, 2\n li a1, 3\n sub a0, a0, a1"),
              uint64_t(-1));
    EXPECT_EQ(runProgram("li a0, 6\n li a1, 7\n mul a0, a0, a1"), 42u);
}

TEST(Hart, SignedUnsignedCompares)
{
    EXPECT_EQ(runProgram("li a0, -1\n li a1, 1\n slt a0, a0, a1"), 1u);
    EXPECT_EQ(runProgram("li a0, -1\n li a1, 1\n sltu a0, a0, a1"), 0u);
    EXPECT_EQ(runProgram("li a0, 5\n sltiu a0, a0, 6"), 1u);
}

TEST(Hart, ShiftSemantics)
{
    EXPECT_EQ(runProgram("li a0, 1\n slli a0, a0, 40"), 1ULL << 40);
    EXPECT_EQ(runProgram("li a0, -8\n srai a0, a0, 2"), uint64_t(-2));
    EXPECT_EQ(runProgram("li a0, -8\n li a1, 2\n srl a0, a0, a1"),
              (~0ULL - 7) >> 2);
}

TEST(Hart, WordOperationsSignExtend)
{
    // addw wraps at 32 bits and sign-extends.
    EXPECT_EQ(runProgram(R"(
        li a0, 0x7fffffff
        li a1, 1
        addw a0, a0, a1
    )"),
              0xffffffff80000000ULL);
    EXPECT_EQ(runProgram("li a0, 0x80000000\n sext.w a0, a0"),
              0xffffffff80000000ULL);
    EXPECT_EQ(runProgram("li a0, 1\n slliw a0, a0, 31"),
              0xffffffff80000000ULL);
}

TEST(Hart, DivisionEdgeCases)
{
    // Division by zero: quotient all ones, remainder = dividend.
    EXPECT_EQ(runProgram("li a0, 7\n li a1, 0\n div a0, a0, a1"),
              ~0ULL);
    EXPECT_EQ(runProgram("li a0, 7\n li a1, 0\n rem a0, a0, a1"), 7u);
    // INT64_MIN / -1 overflow.
    EXPECT_EQ(runProgram(R"(
        li a0, -9223372036854775808
        li a1, -1
        div a0, a0, a1
    )"),
              0x8000000000000000ULL);
    EXPECT_EQ(runProgram(R"(
        li a0, -9223372036854775808
        li a1, -1
        rem a0, a0, a1
    )"),
              0u);
    // Unsigned division.
    EXPECT_EQ(runProgram("li a0, 100\n li a1, 7\n divu a0, a0, a1"),
              14u);
    EXPECT_EQ(runProgram("li a0, 100\n li a1, 7\n remu a0, a0, a1"),
              2u);
}

TEST(Hart, MulHighVariants)
{
    EXPECT_EQ(runProgram(R"(
        li a0, -1
        li a1, -1
        mulh a0, a0, a1
    )"),
              0u); // (-1 * -1) >> 64 == 0
    EXPECT_EQ(runProgram(R"(
        li a0, -1
        li a1, -1
        mulhu a0, a0, a1
    )"),
              ~1ULL); // (2^64-1)^2 >> 64
    EXPECT_EQ(runProgram(R"(
        li a0, -1
        li a1, -1
        mulhsu a0, a0, a1
    )"),
              ~0ULL);
}

TEST(Hart, LoadStoreWidths)
{
    EXPECT_EQ(runProgram(R"(
        la t0, buf
        li t1, 0x1122334455667788
        sd t1, 0(t0)
        lb a0, 7(t0)
        .data
    buf: .zero 8
    )"),
              0x11u);
    EXPECT_EQ(runProgram(R"(
        la t0, buf
        li t1, -1
        sw t1, 0(t0)
        lwu a0, 0(t0)
        .data
    buf: .zero 8
    )"),
              0xffffffffULL);
    EXPECT_EQ(runProgram(R"(
        la t0, buf
        li t1, 0x80
        sb t1, 3(t0)
        lb a0, 3(t0)
        .data
    buf: .zero 8
    )"),
              uint64_t(int64_t(-128)));
}

TEST(Hart, BranchesAndLoops)
{
    // Sum 1..10 = 55.
    EXPECT_EQ(runProgram(R"(
        li a0, 0
        li t0, 1
        li t1, 10
    loop:
        add a0, a0, t0
        addi t0, t0, 1
        ble t0, t1, loop
    )"),
              55u);
}

TEST(Hart, FunctionCallAndReturn)
{
    EXPECT_EQ(runProgram(R"(
        li a0, 5
        call double_it
        call double_it
        j end
    double_it:
        add a0, a0, a0
        ret
    end:
    )"),
              20u);
}

TEST(Hart, JalrTargetClearsLowBit)
{
    EXPECT_EQ(runProgram(R"(
        la t0, target
        ori t0, t0, 1
        jalr zero, t0, 0
        li a0, 111
    target:
        li a0, 7
    )"),
              7u);
}

TEST(Hart, ZeroRegisterIgnoresWrites)
{
    EXPECT_EQ(runProgram(R"(
        li t0, 99
        add zero, t0, t0
        mv a0, zero
    )"),
              0u);
}

TEST(Hart, EcallWriteCollectsOutput)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(R"(
        la a1, msg
        li a2, 5
        li a0, 1
        li a7, 64
        ecall
        li a7, 93
        li a0, 0
        ecall
        .data
    msg: .asciz "hello"
    )"));
    hart.run();
    EXPECT_TRUE(hart.exited());
    EXPECT_EQ(hart.output(), "hello");
}

TEST(Hart, InvalidInstructionFaults)
{
    Memory mem;
    Hart hart(mem);
    Program prog = assemble("nop");
    prog.code[0] = 0; // all-zero word is not a valid instruction
    hart.reset(prog);
    DynInst rec;
    EXPECT_THROW(hart.step(rec), FatalError);
}

TEST(Hart, DynInstRecordsFacts)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(R"(
        la t0, buf
        ld a0, 8(t0)
        beq a0, zero, skip
        nop
    skip:
        li a7, 93
        ecall
        .data
    buf: .zero 16
    )"));

    DynInst rec;
    uint64_t buf_addr = 0;
    while (hart.step(rec)) {
        if (rec.inst.op == Op::Ld) {
            buf_addr = rec.effAddr;
            EXPECT_EQ(rec.memSize(), 8);
        }
        if (rec.inst.op == Op::Beq) {
            EXPECT_TRUE(rec.taken); // buf is zero-initialized
            EXPECT_EQ(rec.nextPc, rec.pc + 8);
        }
    }
    EXPECT_EQ(buf_addr, defaultDataBase + 8);
}

TEST(Hart, SequenceNumbersAreDense)
{
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(R"(
        li t0, 5
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    )"));
    DynInst rec;
    uint64_t expected = 0;
    while (hart.step(rec))
        EXPECT_EQ(rec.seq, expected++);
    EXPECT_GT(expected, 10u);
}
