/**
 * @file
 * Differential verification across the FULL workload suite: every
 * workload runs under {NoFusion, CSF-SBR, Helios, OracleFusion} with
 * the invariant auditor attached (when compiled in), and every
 * configuration must reproduce the baseline architectural state and
 * committed instruction count. Registered under the `slow` ctest
 * label; tier-1 coverage lives in test_differential.cc.
 */

#include <gtest/gtest.h>

#include "harness/differential.hh"

using namespace helios;

TEST(DifferentialFull, AllWorkloadsAllConfigs)
{
    DiffOptions opts;
    opts.maxInsts = 50'000;
    opts.audit = auditHooksCompiled();

    const DiffReport report = runDifferentialAll(opts);

    ASSERT_EQ(report.workloads.size(), allWorkloads().size());
    EXPECT_TRUE(report.ok()) << report.toJson();

    uint64_t audit_checks = 0;
    for (const RunResult &result : report.results) {
        EXPECT_GT(result.cycles, 0u) << result.workload;
        EXPECT_EQ(result.instructions, result.hartInstructions)
            << result.workload << " under "
            << fusionModeName(result.mode);
        audit_checks += result.auditChecks;
    }
    if (opts.audit) {
        EXPECT_GT(audit_checks, 0u);
    }
}
