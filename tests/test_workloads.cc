/**
 * @file
 * Workload validation: every kernel must assemble, run to completion
 * within its instruction budget, and produce exactly the checksum its
 * C++ reference implementation computes. This pins down the assembler,
 * the functional simulator and the kernels themselves.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/hart.hh"
#include "workloads/workloads.hh"

using namespace helios;

namespace
{

class WorkloadCheck : public ::testing::TestWithParam<std::string>
{};

} // namespace

TEST_P(WorkloadCheck, MatchesReference)
{
    const Workload &workload = findWorkload(GetParam());
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());
    hart.run(40'000'000);
    ASSERT_TRUE(hart.exited())
        << workload.name << " did not exit within budget ("
        << hart.instsExecuted() << " insts executed)";
    EXPECT_EQ(hart.exitCode(), workload.reference())
        << workload.name << " checksum mismatch";
}

TEST_P(WorkloadCheck, DynamicLengthIsReasonable)
{
    const Workload &workload = findWorkload(GetParam());
    Memory mem;
    Hart hart(mem);
    hart.reset(workload.program());
    hart.run(40'000'000);
    ASSERT_TRUE(hart.exited());
    // Kernels are sized for meaningful timing runs: long enough to
    // exercise the pipeline, short enough for the bench matrix.
    EXPECT_GT(hart.instsExecuted(), 50'000u) << workload.name;
    EXPECT_LT(hart.instsExecuted(), 2'000'000u) << workload.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCheck,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Workloads, SuiteShape)
{
    const auto &all = allWorkloads();
    EXPECT_GE(all.size(), 30u);
    unsigned spec = 0, mibench = 0;
    for (const Workload &workload : all) {
        EXPECT_FALSE(workload.name.empty());
        EXPECT_FALSE(workload.description.empty());
        (workload.suite == Suite::Spec ? spec : mibench) += 1;
    }
    EXPECT_GE(spec, 10u);
    EXPECT_GE(mibench, 15u);
}

TEST(Workloads, NamesAreUnique)
{
    auto names = workloadNames();
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Workloads, FindUnknownThrows)
{
    EXPECT_THROW(findWorkload("no-such-benchmark"), FatalError);
}
