/** @file Unit tests for common/bits.hh. */

#include <gtest/gtest.h>

#include "common/bits.hh"

using namespace helios;

TEST(Bits, ExtractRange)
{
    EXPECT_EQ(bits(0xdeadbeefULL, 15, 0), 0xbeefULL);
    EXPECT_EQ(bits(0xdeadbeefULL, 31, 16), 0xdeadULL);
    EXPECT_EQ(bits(0xffULL, 3, 0), 0xfULL);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
    EXPECT_EQ(bits(0x80000000'00000000ULL, 63, 63), 1ULL);
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bit(0b1010, 1), 1ULL);
    EXPECT_EQ(bit(0b1010, 0), 0ULL);
    EXPECT_EQ(bit(1ULL << 63, 63), 1ULL);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(sextBits(0xfff, 12), -1);
    EXPECT_EQ(sextBits(0x7ff, 12), 0x7ff);
    EXPECT_EQ(sextBits(0x800, 12), -2048);
    EXPECT_EQ(sextBits(0xff, 8), -1);
    EXPECT_EQ(sextBits(0x0, 1), 0);
    EXPECT_EQ(sextBits(0x1, 1), -1);
}

TEST(Bits, Mask)
{
    EXPECT_EQ(mask(3, 0), 0xfULL);
    EXPECT_EQ(mask(7, 4), 0xf0ULL);
    EXPECT_EQ(mask(63, 0), ~0ULL);
}

TEST(Bits, PowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(96));
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200ULL);
    EXPECT_EQ(alignUp(0x1234, 64), 0x1240ULL);
    EXPECT_EQ(alignDown(0x1240, 64), 0x1240ULL);
    EXPECT_EQ(alignUp(0x1240, 64), 0x1240ULL);
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(floorLog2(1ULL << 40), 40u);
}
