/** @file Determinism and distribution sanity tests for the PRNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

using namespace helios;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RoughlyUniform)
{
    Rng rng(1234);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.below(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 - n / 50);
        EXPECT_LT(count, n / 8 + n / 50);
    }
}
