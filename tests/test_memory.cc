/** @file Sparse memory tests. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "asm/assembler.hh"
#include "sim/memory.hh"

using namespace helios;

TEST(Memory, UninitializedReadsZero)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x1000, 8), 0u);
    EXPECT_EQ(mem.readByte(0xdeadbeef), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(Memory, ByteReadWrite)
{
    Memory mem;
    mem.writeByte(0x42, 0xab);
    EXPECT_EQ(mem.readByte(0x42), 0xab);
    EXPECT_EQ(mem.readByte(0x43), 0);
}

TEST(Memory, LittleEndianMultiByte)
{
    Memory mem;
    mem.write(0x100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(mem.readByte(0x100), 0x08);
    EXPECT_EQ(mem.readByte(0x107), 0x01);
    EXPECT_EQ(mem.read(0x100, 4), 0x05060708u);
    EXPECT_EQ(mem.read(0x104, 4), 0x01020304u);
    EXPECT_EQ(mem.read(0x100, 8), 0x0102030405060708ULL);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const uint64_t addr = Memory::pageSize - 4;
    mem.write(addr, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Memory, BlockCopyRoundTrip)
{
    Memory mem;
    std::vector<uint8_t> src(10000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = uint8_t(i * 7);
    mem.writeBlock(Memory::pageSize - 123, src.data(), src.size());
    std::vector<uint8_t> dst(src.size());
    mem.readBlock(Memory::pageSize - 123, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(Memory, LoadProgramPlacesTextAndData)
{
    Program prog = assemble(R"(
        addi a0, zero, 7
        .data
        .word 0xcafebabe
    )");
    Memory mem;
    mem.loadProgram(prog);
    EXPECT_EQ(mem.read(prog.textBase, 4), prog.code[0]);
    EXPECT_EQ(mem.read(prog.dataBase, 4), 0xcafebabeu);
}

TEST(Memory, OverwriteIsLastWriteWins)
{
    Memory mem;
    mem.write(0x10, 0xffffffffffffffffULL, 8);
    mem.write(0x12, 0x0, 2);
    EXPECT_EQ(mem.read(0x10, 8), 0xffffffff0000ffffULL);
}

TEST(Memory, ChecksumMatchesNaiveReference)
{
    // checksum() walks the residency bitmap / high-page map through
    // forEachResidentPage; this recomputes the digest from first
    // principles — the test tracks which pages it wrote itself, reads
    // them back with readBlock and hashes page-by-page — so a walker
    // that skips, duplicates or reorders a page cannot agree.
    Memory mem;
    std::set<uint64_t> written;
    auto touch = [&](uint64_t addr, uint8_t value) {
        mem.writeByte(addr, value);
        written.insert(addr >> Memory::pageBits);
    };

    // Arena pages in deliberately non-ascending touch order, plus a
    // cross-page write and high pages beyond the contiguous arena
    // (allocated in the hash map, whose iteration order must not
    // leak into the digest).
    touch(0x5000, 0x11);
    touch(0x0, 0x22);
    touch(0x123456, 0x33);
    mem.write(Memory::pageSize * 9 - 2, 0xbeef, 4); // spans two pages
    written.insert(8);
    written.insert(9);
    touch(0x400000000ULL, 0x44); // high page (beyond the 128 MiB arena)
    touch(0x7f0000000ULL, 0x55);
    touch(0x400000000ULL + 7, 0x66); // same high page twice

    // Every tracked page is resident and vice versa along the walk,
    // in strictly ascending order.
    std::vector<uint64_t> visited;
    mem.forEachResidentPage(
        [&](uint64_t index, const uint8_t *) {
            visited.push_back(index);
            EXPECT_TRUE(mem.pageResident(index));
        });
    EXPECT_EQ(std::vector<uint64_t>(written.begin(), written.end()),
              visited);

    // Naive reference: FNV-1a over (8 LE index bytes, 4096 data
    // bytes) per resident page, ascending.
    uint64_t hash = 1469598103934665603ULL;
    constexpr uint64_t prime = 1099511628211ULL;
    for (uint64_t index : written) {
        for (unsigned shift = 0; shift < 64; shift += 8) {
            hash ^= (index >> shift) & 0xff;
            hash *= prime;
        }
        std::vector<uint8_t> page(Memory::pageSize);
        mem.readBlock(index << Memory::pageBits, page.data(),
                      page.size());
        for (uint8_t byte : page) {
            hash ^= byte;
            hash *= prime;
        }
    }
    EXPECT_EQ(mem.checksum(), hash);

    // And the digest actually depends on content: flip one byte.
    mem.writeByte(0x5001, 0x99);
    EXPECT_NE(mem.checksum(), hash);
}
