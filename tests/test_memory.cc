/** @file Sparse memory tests. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/memory.hh"

using namespace helios;

TEST(Memory, UninitializedReadsZero)
{
    Memory mem;
    EXPECT_EQ(mem.read(0x1000, 8), 0u);
    EXPECT_EQ(mem.readByte(0xdeadbeef), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(Memory, ByteReadWrite)
{
    Memory mem;
    mem.writeByte(0x42, 0xab);
    EXPECT_EQ(mem.readByte(0x42), 0xab);
    EXPECT_EQ(mem.readByte(0x43), 0);
}

TEST(Memory, LittleEndianMultiByte)
{
    Memory mem;
    mem.write(0x100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(mem.readByte(0x100), 0x08);
    EXPECT_EQ(mem.readByte(0x107), 0x01);
    EXPECT_EQ(mem.read(0x100, 4), 0x05060708u);
    EXPECT_EQ(mem.read(0x104, 4), 0x01020304u);
    EXPECT_EQ(mem.read(0x100, 8), 0x0102030405060708ULL);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const uint64_t addr = Memory::pageSize - 4;
    mem.write(addr, 0x1122334455667788ULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ULL);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Memory, BlockCopyRoundTrip)
{
    Memory mem;
    std::vector<uint8_t> src(10000);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = uint8_t(i * 7);
    mem.writeBlock(Memory::pageSize - 123, src.data(), src.size());
    std::vector<uint8_t> dst(src.size());
    mem.readBlock(Memory::pageSize - 123, dst.data(), dst.size());
    EXPECT_EQ(src, dst);
}

TEST(Memory, LoadProgramPlacesTextAndData)
{
    Program prog = assemble(R"(
        addi a0, zero, 7
        .data
        .word 0xcafebabe
    )");
    Memory mem;
    mem.loadProgram(prog);
    EXPECT_EQ(mem.read(prog.textBase, 4), prog.code[0]);
    EXPECT_EQ(mem.read(prog.dataBase, 4), 0xcafebabeu);
}

TEST(Memory, OverwriteIsLastWriteWins)
{
    Memory mem;
    mem.write(0x10, 0xffffffffffffffffULL, 8);
    mem.write(0x12, 0x0, 2);
    EXPECT_EQ(mem.read(0x10, 8), 0xffffffff0000ffffULL);
}
