/** @file Pipeline event-trace tests. */

#include <sstream>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/runner.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

TEST(PipelineTrace, CommitLinesAndFusionMarkers)
{
    const char *source = R"(
        la s0, data
        li s1, 500
    loop:
        ld t0, 0(s0)
        add t2, t2, t0
        ld t1, 16(s0)
        add t2, t2, t1
        addi s1, s1, -1
        bnez s1, loop
        mv a0, t2
        li a7, 93
        ecall
        .data
        .align 6
    data:
        .zero 64
    )";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    HartFeed feed(hart);
    CoreParams params = CoreParams::icelake(FusionMode::Helios);
    std::ostringstream trace;
    params.traceOut = &trace;
    Pipeline pipeline(params, feed);
    const PipelineResult result = pipeline.run();

    const std::string text = trace.str();
    // One line per committed µ-op (plus event lines).
    size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_GE(lines, result.uops);
    // Cycle stamps and disassembly are present.
    EXPECT_NE(text.find("[F"), std::string::npos);
    EXPECT_NE(text.find("ld t0, 0(s0)"), std::string::npos);
    // NCSF fusion markers appear once the predictor warms up.
    EXPECT_NE(text.find("<NCSF + ld t1, 16(s0)>"), std::string::npos);
}

TEST(PipelineTrace, DisabledByDefault)
{
    const Workload &workload = findWorkload("crc32");
    RunResult result = runOne(workload, FusionMode::Helios, 5'000);
    EXPECT_GT(result.instructions, 0u); // no crash without a sink
}
