/**
 * @file
 * The hot-path data structures behind the cycle-level core (see
 * DESIGN.md, "Performance engineering"): the µ-op slab pool, the
 * fixed-capacity ring buffers, the address-range counting filter —
 * and the two whole-pipeline guarantees they must uphold:
 *
 *  - recycling µ-op slots is invisible: a squash-heavy run with the
 *    pool recycling (production) and with the never-reuse debug
 *    fallback (CoreParams::poolRecycling = false) produce identical
 *    architectural state, an identical stat dump, and a clean audit;
 *
 *  - the seq-indexed rings wrap without corruption: runs long enough
 *    to lap the inflight ring several times still commit in strict
 *    program order under every fusion mode, with the profiler's
 *    per-site partition invariants intact.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/ring.hh"
#include "harness/runner.hh"
#include "telemetry/lifecycle.hh"
#include "telemetry/profiler.hh"
#include "uarch/auditor.hh"
#include "uarch/mem_filter.hh"
#include "uarch/uop.hh"
#include "uarch/uop_pool.hh"

using namespace helios;

namespace
{

const FusionMode allModes[] = {FusionMode::None,
                               FusionMode::RiscvFusion,
                               FusionMode::CsfSbr,
                               FusionMode::RiscvFusionPP,
                               FusionMode::Helios,
                               FusionMode::Oracle};

std::string
tag(const char *workload, FusionMode mode)
{
    return std::string(workload) + "/" + fusionModeName(mode);
}

} // namespace

// ---------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------

TEST(RingBuffer, WrapsAndKeepsFifoOrder)
{
    RingBuffer<int> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    // Drive head all the way around the backing array several times.
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 5; ++round) {
        while (!ring.full())
            ring.push_back(next_in++);
        EXPECT_EQ(ring.size(), 4u);
        // Logical index 0 is always the oldest element.
        for (size_t i = 0; i < ring.size(); ++i)
            EXPECT_EQ(ring[i], next_out + int(i));
        ring.pop_front();
        ring.pop_front();
        EXPECT_EQ(ring.front(), next_out + 2);
        next_out += 2;
    }
}

TEST(RingBuffer, IterationMatchesLogicalOrder)
{
    RingBuffer<int> ring(3);
    ring.push_back(1);
    ring.push_back(2);
    ring.pop_front(); // head now mid-array: iteration must wrap
    ring.push_back(3);
    ring.push_back(4);

    std::vector<int> seen;
    for (int value : ring)
        seen.push_back(value);
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
    EXPECT_EQ(ring.back(), 4);

    ring.pop_back();
    EXPECT_EQ(ring.back(), 3);
    ring.clear();
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------
// UopPool
// ---------------------------------------------------------------------

TEST(UopPool, RecyclesSlotsLifoAndResetsState)
{
    UopPool pool(true);
    Uop *first = pool.alloc();
    first->seq = 42;
    first->issued = true;
    first->dependents.push_back(7);
    first->tailProducers.push_back(9);

    pool.release(first);
    Uop *second = pool.alloc();
    // LIFO free list: the released slot comes straight back...
    EXPECT_EQ(second, first);
    // ...with every field reset to a fresh µ-op.
    EXPECT_EQ(second->seq, 0u);
    EXPECT_FALSE(second->issued);
    EXPECT_TRUE(second->dependents.empty());
    EXPECT_TRUE(second->tailProducers.empty());
}

TEST(UopPool, DebugModeNeverReusesSlots)
{
    UopPool pool(false);
    EXPECT_FALSE(pool.recycling());
    Uop *first = pool.alloc();
    pool.release(first);
    EXPECT_NE(pool.alloc(), first);
}

TEST(UopPool, GrowsBySlab)
{
    UopPool pool(true);
    std::vector<Uop *> live;
    for (size_t i = 0; i < UopPool::slabSize + 1; ++i)
        live.push_back(pool.alloc());
    EXPECT_EQ(pool.numSlabs(), 2u);
    // Recycling the whole population keeps the pool at two slabs
    // forever after.
    for (Uop *uop : live)
        pool.release(uop);
    for (size_t i = 0; i < live.size(); ++i)
        pool.alloc();
    EXPECT_EQ(pool.numSlabs(), 2u);
}

// ---------------------------------------------------------------------
// MemRangeFilter
// ---------------------------------------------------------------------

TEST(MemRangeFilter, NeverFalseNegative)
{
    MemRangeFilter filter;
    EXPECT_TRUE(filter.empty());
    // Empty filter: nothing can overlap.
    EXPECT_FALSE(filter.mayOverlap(0x1000, 0x1008));

    filter.add(0x1000, 0x1008);
    EXPECT_FALSE(filter.empty());
    // Same range, contained range, and straddling range must all hit.
    EXPECT_TRUE(filter.mayOverlap(0x1000, 0x1008));
    EXPECT_TRUE(filter.mayOverlap(0x1004, 0x1005));
    EXPECT_TRUE(filter.mayOverlap(0x0ff8, 0x1001));

    filter.remove(0x1000, 0x1008);
    EXPECT_TRUE(filter.empty());
    EXPECT_FALSE(filter.mayOverlap(0x1000, 0x1008));
}

TEST(MemRangeFilter, OversizedRangesStayConservative)
{
    MemRangeFilter filter;
    // A range spanning more granules than the per-range cap is
    // tracked by count only: every query must then hit.
    filter.add(0x10000, 0x20000);
    EXPECT_TRUE(filter.mayOverlap(0x0, 0x1));
    filter.remove(0x10000, 0x20000);
    EXPECT_TRUE(filter.empty());
    EXPECT_FALSE(filter.mayOverlap(0x10000, 0x10008));
}

// ---------------------------------------------------------------------
// Pool recycling is invisible to the simulation
// ---------------------------------------------------------------------

TEST(PoolRecycling, SquashStormBitIdenticalToDebugFallback)
{
    // sha and 620.omnetpp_s are the suite's flush-heaviest kernels
    // at this budget (mispredicted data-dependent branches): hundreds
    // of squashed µ-ops go back to the pool and their slots are
    // handed to refetched successors. The debug fallback gives every
    // fetch a pristine slot instead; any stale-field leak through
    // Uop::recycle() shows up as a diverging stat dump or checksum.
    for (const char *workload : {"sha", "620.omnetpp_s"}) {
        for (FusionMode mode :
             {FusionMode::None, FusionMode::Helios,
              FusionMode::Oracle}) {
            CoreParams recycled = CoreParams::icelake(mode);
            recycled.audit = auditHooksCompiled();
            CoreParams pristine = recycled;
            pristine.poolRecycling = false;

            const RunResult a =
                runOne(findWorkload(workload), recycled, 30'000);
            const RunResult b =
                runOne(findWorkload(workload), pristine, 30'000);

            EXPECT_EQ(a.archChecksum, b.archChecksum)
                << tag(workload, mode);
            EXPECT_EQ(a.memChecksum, b.memChecksum)
                << tag(workload, mode);
            EXPECT_EQ(a.cycles, b.cycles) << tag(workload, mode);
            EXPECT_EQ(a.uops, b.uops) << tag(workload, mode);
            EXPECT_EQ(a.stats.dump(), b.stats.dump())
                << tag(workload, mode);
            // The squash storm actually happened...
            EXPECT_GT(a.stat("flush.squashed_uops"), 0u)
                << tag(workload, mode);
            // ...and both disciplines audit clean.
            if (auditHooksCompiled()) {
                EXPECT_TRUE(a.auditViolations.empty())
                    << tag(workload, mode);
                EXPECT_TRUE(b.auditViolations.empty())
                    << tag(workload, mode);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Ring wraparound
// ---------------------------------------------------------------------

TEST(RingWraparound, CommitOrderSurvivesSeqWrapInEveryMode)
{
    // The inflight ring holds ~4k slots at the default geometry, so a
    // 30k-instruction run laps it several times; shrunken structure
    // sizes make each lap cheaper and force the ROB/LQ/SQ rings to
    // wrap their backing arrays thousands of times.
    for (FusionMode mode : allModes) {
        CoreParams params = CoreParams::icelake(mode);
        params.robSize = 24;
        params.aqSize = 12;
        params.iqSize = 16;
        params.lqSize = 8;
        params.sqSize = 6;
        params.audit = auditHooksCompiled();
        LifecycleTracer tracer;
        params.tracer = &tracer;

        const RunResult result =
            runOne(findWorkload("qsort"), params, 30'000);
        ASSERT_GT(result.uops, 8192u) << fusionModeName(mode);
        if (auditHooksCompiled()) {
            EXPECT_TRUE(result.auditViolations.empty())
                << fusionModeName(mode);
        }

        // Committed µ-ops must appear in strict program order with
        // monotone retire stamps, no matter how often their seq
        // numbers wrapped the ring index.
        uint64_t last_seq = 0, last_retire = 0, committed = 0;
        for (const UopLifecycle &record : tracer.records()) {
            if (record.squashed)
                continue;
            if (committed > 0) {
                EXPECT_GT(record.seq, last_seq)
                    << fusionModeName(mode);
                EXPECT_GE(record.retire, last_retire)
                    << fusionModeName(mode);
            }
            last_seq = record.seq;
            last_retire = record.retire;
            ++committed;
        }
        EXPECT_EQ(committed, tracer.numCommitted())
            << fusionModeName(mode);
        EXPECT_GT(committed, 0u) << fusionModeName(mode);
    }
}

TEST(RingWraparound, ProfilerPartitionHoldsAcrossWraps)
{
    for (FusionMode mode : allModes) {
        CoreParams params = CoreParams::icelake(mode);
        params.profile = true;

        const RunResult result =
            runOne(findWorkload("qsort"), params, 30'000);
        ASSERT_TRUE(result.profiled) << fusionModeName(mode);
        const ProfileData &profile = result.profile;

        // Per-site executions and fused pairs partition the run's
        // aggregates exactly — a wrapped ring that dropped or
        // double-counted a µ-op would break the sum.
        uint64_t executions = 0, fused_tail = 0;
        for (const ProfileSite &site : profile.sites) {
            executions += site.executions;
            fused_tail += site.fusedTail;
        }
        EXPECT_EQ(executions, result.stat("commit.insts"))
            << fusionModeName(mode);
        EXPECT_EQ(fused_tail, profile.fusedPairs())
            << fusionModeName(mode);
    }
}
