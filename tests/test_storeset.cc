/** @file Store-set memory dependence predictor tests. */

#include <gtest/gtest.h>

#include "uarch/storeset.hh"

using namespace helios;

namespace
{
constexpr uint64_t loadPc = 0x1000;
constexpr uint64_t storePc = 0x2000;
} // namespace

TEST(StoreSets, ColdLoadIsIndependent)
{
    StoreSets sets;
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
}

TEST(StoreSets, ViolationCreatesDependence)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 42);
    EXPECT_EQ(sets.loadDependence(loadPc), 42u);
}

TEST(StoreSets, StoreCompletionClearsLfst)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 42);
    sets.storeCompleted(storePc, 42);
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
}

TEST(StoreSets, CompletionOfOlderInstanceKeepsNewer)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 42);
    sets.storeRenamed(storePc, 50);
    sets.storeCompleted(storePc, 42); // stale completion
    EXPECT_EQ(sets.loadDependence(loadPc), 50u);
}

TEST(StoreSets, UntrainedStoreDoesNotTrack)
{
    StoreSets sets;
    sets.storeRenamed(storePc, 42);
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
}

TEST(StoreSets, MergeTwoSets)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.trainViolation(0x3000, 0x4000);
    // Merge the two sets through a cross violation.
    sets.trainViolation(loadPc, 0x4000);
    sets.storeRenamed(0x4000, 77);
    EXPECT_EQ(sets.loadDependence(loadPc), 77u);
}

TEST(StoreSets, SquashDropsYoungerStores)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 90);
    sets.squash(80);
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
}

TEST(StoreSets, SquashKeepsOlderStores)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 70);
    sets.squash(80);
    EXPECT_EQ(sets.loadDependence(loadPc), 70u);
}

TEST(StoreSets, AgingForgetsSets)
{
    StoreSets sets;
    sets.trainViolation(loadPc, storePc);
    sets.storeRenamed(storePc, 42);
    sets.age();
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
    sets.storeRenamed(storePc, 43);
    EXPECT_EQ(sets.loadDependence(loadPc), StoreSets::invalidSeq);
}
