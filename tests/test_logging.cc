/**
 * @file
 * Structured logger contract.
 *
 * The properties call sites rely on: level names round-trip and
 * unknown names fail loudly; the threshold filters; warn()/inform()
 * keep their historical "warn: "/"info: " prefixes; concurrent
 * writers never interleave partial lines (the runMatrix regression);
 * LogContext fields nest and pop; the JSON-lines sink emits one
 * parsable object per record; and a pending progress line never
 * collides with a log record.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"

using namespace helios;

namespace
{

/**
 * RAII logger-state guard: every test drives the one global logger,
 * so level, capture sink and JSON sink are restored on exit no matter
 * how the test ends.
 */
class LoggerFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_level = Logger::global().level();
        Logger::global().captureText(&captured);
    }

    void
    TearDown() override
    {
        Logger::global().captureText(nullptr);
        Logger::global().closeJsonSink();
        Logger::global().setLevel(saved_level);
    }

    std::string
    text() const
    {
        return captured.str();
    }

    std::ostringstream captured;
    LogLevel saved_level = LogLevel::Info;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(LogLevelNames, RoundTrip)
{
    for (const LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
          LogLevel::Warn, LogLevel::Error, LogLevel::Off})
        EXPECT_EQ(logLevelFromName(logLevelName(level)), level);
    EXPECT_EQ(logLevelFromName("WARN"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("Info"), LogLevel::Info);
}

TEST(LogLevelNames, UnknownNameIsFatal)
{
    EXPECT_THROW(logLevelFromName("verbose"), FatalError);
    EXPECT_THROW(logLevelFromName(""), FatalError);
}

TEST_F(LoggerFixture, ThresholdFiltersBySeverity)
{
    Logger::global().setLevel(LogLevel::Warn);
    logTrace("trace message");
    logDebug("debug message");
    inform("info message");
    warn("warn message");
    logError("error message");

    const std::string out = text();
    EXPECT_EQ(out.find("trace message"), std::string::npos) << out;
    EXPECT_EQ(out.find("debug message"), std::string::npos) << out;
    EXPECT_EQ(out.find("info message"), std::string::npos) << out;
    EXPECT_NE(out.find("warn: warn message"), std::string::npos) << out;
    EXPECT_NE(out.find("error: error message"), std::string::npos)
        << out;
}

TEST_F(LoggerFixture, OffSuppressesEverything)
{
    Logger::global().setLevel(LogLevel::Off);
    logError("should not appear");
    Logger::global().log(LogLevel::Off, "also not this");
    EXPECT_EQ(text(), "");
}

TEST_F(LoggerFixture, TraceLevelEmitsEveryRecordWithItsPrefix)
{
    Logger::global().setLevel(LogLevel::Trace);
    logTrace("t");
    logDebug("d");
    inform("i");
    warn("w");
    logError("e");

    const std::vector<std::string> lines = splitLines(text());
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], "trace: t");
    EXPECT_EQ(lines[1], "debug: d");
    EXPECT_EQ(lines[2], "info: i");
    EXPECT_EQ(lines[3], "warn: w");
    EXPECT_EQ(lines[4], "error: e");
}

TEST_F(LoggerFixture, DisabledLevelCheapCheck)
{
    Logger::global().setLevel(LogLevel::Error);
    EXPECT_FALSE(Logger::global().enabled(LogLevel::Trace));
    EXPECT_FALSE(Logger::global().enabled(LogLevel::Warn));
    EXPECT_TRUE(Logger::global().enabled(LogLevel::Error));
}

TEST_F(LoggerFixture, ContextFieldsAppendAndNest)
{
    Logger::global().setLevel(LogLevel::Info);
    {
        LogContext outer({{"cell", "3"}, {"workload", "qsort"}});
        inform("outer");
        {
            LogContext inner(
                std::vector<std::pair<std::string, std::string>>{
                    {"config", "Helios"}});
            inform("inner");
        }
        inform("outer again");
    }
    inform("bare");

    const std::vector<std::string> lines = splitLines(text());
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], "info: outer [cell=3 workload=qsort]");
    EXPECT_EQ(lines[1],
              "info: inner [cell=3 workload=qsort config=Helios]");
    EXPECT_EQ(lines[2], "info: outer again [cell=3 workload=qsort]");
    EXPECT_EQ(lines[3], "info: bare");
}

TEST_F(LoggerFixture, ConcurrentWarnsNeverInterleave)
{
    // The regression that motivated the logger: parallel runMatrix
    // workers used to write to stderr with multiple stream operations
    // per line, so two workers could mangle each other's output.
    // Every emitted line must now be exactly one intact record.
    Logger::global().setLevel(LogLevel::Info);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&go, t] {
            while (!go.load())
                std::this_thread::yield();
            LogContext context(
                std::vector<std::pair<std::string, std::string>>{
                    {"worker", std::to_string(t)}});
            for (int i = 0; i < kPerThread; ++i)
                warn("payload-%d-%d abcdefghijklmnopqrstuvwxyz", t, i);
        });
    }
    go.store(true);
    for (std::thread &thread : threads)
        thread.join();

    const std::vector<std::string> lines = splitLines(text());
    ASSERT_EQ(lines.size(), size_t(kThreads) * kPerThread);
    for (const std::string &line : lines) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "warn: payload-%d-%d "
                              "abcdefghijklmnopqrstuvwxyz "
                              "[worker=%*d]",
                              &t, &i),
                  2)
            << "mangled line: " << line;
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kPerThread);
        EXPECT_EQ(line,
                  strFormat("warn: payload-%d-%d "
                            "abcdefghijklmnopqrstuvwxyz [worker=%d]",
                            t, i, t));
    }
}

TEST_F(LoggerFixture, JsonSinkEmitsOneParsableObjectPerRecord)
{
    const std::string path = tempPath("logger_sink.jsonl");
    std::remove(path.c_str());
    Logger::global().setLevel(LogLevel::Debug);
    Logger::global().openJsonSink(path);
    ASSERT_TRUE(Logger::global().jsonSinkOpen());

    {
        LogContext context({{"cell", "7"}, {"config", "CSF-SBR"}});
        warn("quoted \"text\" and\nnewline");
    }
    logDebug("plain");
    logTrace("below threshold; not recorded");
    Logger::global().closeJsonSink();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    std::vector<JsonValue> records;
    while (std::getline(in, line))
        records.push_back(JsonValue::parse(line));
    ASSERT_EQ(records.size(), 2u);

    EXPECT_EQ(records[0].at("level").asString(), "warn");
    EXPECT_EQ(records[0].at("msg").asString(),
              "quoted \"text\" and\nnewline");
    EXPECT_EQ(records[0].at("cell").asString(), "7");
    EXPECT_EQ(records[0].at("config").asString(), "CSF-SBR");
    EXPECT_TRUE(records[0].has("ts"));
    EXPECT_TRUE(records[0].has("thread"));

    EXPECT_EQ(records[1].at("level").asString(), "debug");
    EXPECT_EQ(records[1].at("msg").asString(), "plain");
    EXPECT_FALSE(records[1].has("cell"));
    std::remove(path.c_str());
}

TEST_F(LoggerFixture, UnwritableJsonSinkIsFatal)
{
    EXPECT_THROW(Logger::global().openJsonSink(
                     tempPath("no-such-dir/sink.jsonl")),
                 FatalError);
    EXPECT_FALSE(Logger::global().jsonSinkOpen());
}

TEST_F(LoggerFixture, ProgressLineYieldsToLogRecords)
{
    Logger::global().setLevel(LogLevel::Info);
    Logger::global().progress("3/10 cells");
    Logger::global().progress("4/10 cells");
    inform("a real record");
    Logger::global().progress("5/10 cells");
    Logger::global().clearProgress();
    Logger::global().clearProgress(); // idempotent

    // In capture mode progress lines are \r-prefixed and unterminated;
    // the record still lands on its own line and the final clear
    // terminates the last progress line.
    const std::string out = text();
    EXPECT_NE(out.find("\r3/10 cells"), std::string::npos) << out;
    EXPECT_NE(out.find("info: a real record\n"), std::string::npos)
        << out;
    EXPECT_NE(out.find("\r5/10 cells\n"), std::string::npos) << out;
}

// ---------------------------------------------------------------------
// Matrix-progress formatting: the rate/ETA arithmetic behind the
// sweep progress line. Guarded against the divisions that used to be
// possible in-line: zero elapsed wall-clock (coarse clocks, first
// render) and zero completed cells have no meaningful rate, and an
// ETA beyond any real sweep is clamped instead of printed as noise.
// ---------------------------------------------------------------------

TEST(MatrixProgressFormat, FirstCellAndZeroClockShowPlaceholders)
{
    // Before the first cell completes there is no rate to divide by.
    EXPECT_EQ(formatMatrixProgress(0, 10, 5.0),
              "0/10 cells (0%), -- cells/s, ETA --");
    // A zero (or negative, from a clock hiccup) elapsed time must not
    // divide either, even with cells done.
    EXPECT_EQ(formatMatrixProgress(3, 10, 0.0),
              "3/10 cells (30%), -- cells/s, ETA --");
    EXPECT_EQ(formatMatrixProgress(3, 10, -1.0),
              "3/10 cells (30%), -- cells/s, ETA --");
}

TEST(MatrixProgressFormat, SteadyStateRateAndEta)
{
    // 5 of 10 cells in 10 s: 0.5 cells/s, 5 remaining, ETA 10 s.
    EXPECT_EQ(formatMatrixProgress(5, 10, 10.0),
              "5/10 cells (50%), 0.5 cells/s, ETA 10.0s");
}

TEST(MatrixProgressFormat, CompletionHasZeroEta)
{
    EXPECT_EQ(formatMatrixProgress(10, 10, 4.0),
              "10/10 cells (100%), 2.5 cells/s, ETA 0.0s");
}

TEST(MatrixProgressFormat, AbsurdEtaIsClamped)
{
    // One cell done after a week, 999 to go: the honest ETA is ~19
    // years; print a clamp marker instead of a meaningless number.
    const std::string line =
        formatMatrixProgress(1, 1000, 604800.0);
    EXPECT_NE(line.find("ETA >99h"), std::string::npos) << line;
}

TEST(MatrixProgressFormat, ZeroTotalDoesNotDivide)
{
    // Degenerate empty matrix: percent must not divide by zero.
    EXPECT_EQ(formatMatrixProgress(0, 0, 1.0),
              "0/0 cells (100%), -- cells/s, ETA --");
}
