/**
 * @file
 * Pipeline integration tests: every configuration must preserve
 * architectural semantics (committing exactly the functional stream)
 * while keeping its statistics self-consistent.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

constexpr uint64_t budget = 60'000;

const std::string sweepWorkloads[] = {
    "605.mcf_s",      "602.gcc_s_1", "657.xz_s_1", "620.omnetpp_s",
    "qsort",          "sha",         "patricia",   "fft",
    "crc32",          "typeset",     "blowfish",   "rsynth",
    "648.exchange2_s", "631.deepsjeng_s",
};

const FusionMode allModes[] = {
    FusionMode::None,    FusionMode::RiscvFusion,
    FusionMode::CsfSbr,  FusionMode::RiscvFusionPP,
    FusionMode::Helios,  FusionMode::Oracle,
};

class ModeSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    const Workload &workload() { return findWorkload(std::get<0>(GetParam())); }
    FusionMode mode() { return allModes[std::get<1>(GetParam())]; }
};

} // namespace

TEST_P(ModeSweep, CommitsExactlyTheFunctionalStream)
{
    // Functional execution gives ground truth for the dynamic length.
    Memory mem;
    Hart hart(mem);
    hart.reset(workload().program());
    const uint64_t expected = hart.run(budget);

    RunResult result = runOne(workload(), mode(), budget);
    EXPECT_EQ(result.instructions, expected)
        << "pipeline committed a different instruction count";
    EXPECT_GT(result.cycles, 0u);
}

TEST_P(ModeSweep, StatisticsAreSelfConsistent)
{
    RunResult r = runOne(workload(), mode(), budget);

    // Committed µ-ops + fused pairs == committed instructions.
    const uint64_t pairs = r.stat("pairs.csf_mem") +
                           r.stat("pairs.csf_other") +
                           r.stat("pairs.ncsf");
    EXPECT_EQ(r.uops + pairs, r.instructions);

    // IPC in a sane band.
    EXPECT_GT(r.ipc(), 0.05);
    EXPECT_LT(r.ipc(), double(CoreParams().commitWidth));

    switch (mode()) {
      case FusionMode::None:
        EXPECT_EQ(pairs, 0u);
        break;
      case FusionMode::RiscvFusion:
        EXPECT_EQ(r.stat("pairs.csf_mem") + r.stat("pairs.ncsf"), 0u);
        break;
      case FusionMode::CsfSbr:
        EXPECT_EQ(r.stat("pairs.csf_other") + r.stat("pairs.ncsf"), 0u);
        break;
      case FusionMode::RiscvFusionPP:
        EXPECT_EQ(r.stat("pairs.ncsf"), 0u);
        break;
      case FusionMode::Helios:
        // Validated fusions cannot exceed applied ones.
        EXPECT_LE(r.stat("fusion.validated"),
                  r.stat("fusion.fp_applied"));
        EXPECT_LE(r.stat("pairs.fp_validated"),
                  r.stat("fusion.fp_applied"));
        break;
      case FusionMode::Oracle:
        EXPECT_EQ(r.stat("fusion.fp_applied"), 0u);
        EXPECT_EQ(r.stat("fusion.mispredicts"), 0u);
        break;
    }

    // Loads/stores executed at least once each (committed count is in
    // instructions; replays can make executed > committed).
    if (r.stat("commit.loads") > 0) {
        EXPECT_GT(r.stat("exec.loads"), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ModeSweep,
    ::testing::Combine(::testing::ValuesIn(sweepWorkloads),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>
           &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           fusionModeName(
                               allModes[std::get<1>(info.param)]);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Pipeline, FusionModesNeverChangeResults)
{
    // Run a self-checking kernel to completion under every mode: the
    // exit checksum must match the reference each time. (Timing-only
    // machinery must never alter architectural behaviour.)
    const Workload &w = findWorkload("648.exchange2_s");
    const uint64_t expected = w.reference();
    for (FusionMode mode : allModes) {
        Memory mem;
        Hart hart(mem);
        hart.reset(w.program());
        HartFeed feed(hart, UINT64_MAX);
        CoreParams params = CoreParams::icelake(mode);
        Pipeline pipeline(params, feed);
        pipeline.run();
        EXPECT_TRUE(hart.exited()) << fusionModeName(mode);
        EXPECT_EQ(hart.exitCode(), expected) << fusionModeName(mode);
    }
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const Workload &w = findWorkload("631.deepsjeng_s");
    RunResult a = runOne(w, FusionMode::Helios, 40'000);
    RunResult b = runOne(w, FusionMode::Helios, 40'000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.dump(), b.stats.dump());
}

TEST(Pipeline, MaxCyclesCapRespected)
{
    const Workload &w = findWorkload("605.mcf_s");
    CoreParams params = CoreParams::icelake(FusionMode::None);
    params.maxCycles = 1'000;
    Memory mem;
    Hart hart(mem);
    hart.reset(w.program());
    HartFeed feed(hart, UINT64_MAX);
    Pipeline pipeline(params, feed);
    PipelineResult result = pipeline.run();
    EXPECT_LE(result.cycles, 1'000u);
}

TEST(Pipeline, FusionImprovesGeomeanOrdering)
{
    // Headline shape on a pressure-bound workload: fusing memory
    // pairs must not lose to no fusion, and Helios must beat
    // consecutive-only memory fusion (the paper's key claim).
    const Workload &w = findWorkload("602.gcc_s_1");
    const double none = runOne(w, FusionMode::None, budget).ipc();
    const double csf = runOne(w, FusionMode::CsfSbr, budget).ipc();
    const double helios = runOne(w, FusionMode::Helios, budget).ipc();
    EXPECT_GT(csf, none);
    EXPECT_GT(helios, csf);
}
