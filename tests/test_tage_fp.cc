/** @file TAGE-organized fusion predictor tests. */

#include <gtest/gtest.h>

#include "fusion/tage_fp.hh"
#include "harness/runner.hh"

using namespace helios;

namespace
{
constexpr uint64_t pc = 0x10440;
} // namespace

TEST(TageFp, ColdLookupInvalid)
{
    TageFusionPredictor fp;
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
}

TEST(TageFp, BaseComponentLearnsHistoryFreePattern)
{
    TageFusionPredictor fp;
    for (int i = 0; i < 3; ++i)
        fp.train(pc, uint16_t(i * 37), 9); // varying histories
    FpPrediction pred = fp.lookup(pc, 0x1234);
    EXPECT_TRUE(pred.valid);
    EXPECT_EQ(pred.distance, 9u);
}

TEST(TageFp, TaggedComponentSeparatesHistories)
{
    TageFusionPredictor fp;
    // Distance depends on the branch history: the base entry keeps
    // flapping, the tagged components split the contexts.
    for (int i = 0; i < 12; ++i) {
        fp.train(pc, 0x0003, 5);
        fp.train(pc, 0x000c, 20);
    }
    const FpPrediction a = fp.lookup(pc, 0x0003);
    const FpPrediction b = fp.lookup(pc, 0x000c);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    EXPECT_EQ(a.distance, 5u);
    EXPECT_EQ(b.distance, 20u);
    EXPECT_GE(a.provider, 0);
}

TEST(TageFp, MispredictPoisonsAndBacksOff)
{
    TageFusionPredictor fp;
    for (int i = 0; i < 3; ++i)
        fp.train(pc, 0, 7);
    FpPrediction pred = fp.lookup(pc, 0);
    ASSERT_TRUE(pred.valid);
    fp.resolve(pred, false);
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
    // Retraining must first count the poison down.
    for (int i = 0; i < 3; ++i)
        fp.train(pc, 0, 7);
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
    for (int i = 0; i < 4; ++i)
        fp.train(pc, 0, 7);
    EXPECT_TRUE(fp.lookup(pc, 0).valid);
}

TEST(TageFp, StrikeSuppressionAfterSerialMispredicts)
{
    TageFusionPredictor fp;
    for (unsigned round = 0; round < 8; ++round) {
        for (int i = 0; i < 10; ++i)
            fp.train(pc, 0, 7);
        FpPrediction pred = fp.lookup(pc, 0);
        if (!pred.valid)
            break;
        fp.resolve(pred, false);
    }
    // After the strike limit, the PC is suppressed regardless of
    // training.
    for (int i = 0; i < 20; ++i)
        fp.train(pc, 0, 7);
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
}

TEST(TageFp, ZeroAndOverlongDistancesRejected)
{
    TageFusionPredictor fp;
    for (int i = 0; i < 5; ++i)
        fp.train(pc, 0, 0);
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
    for (int i = 0; i < 5; ++i)
        fp.train(pc, 0, 64);
    EXPECT_FALSE(fp.lookup(pc, 0).valid);
}

TEST(TageFp, HeliosIntegration)
{
    // The full pipeline must fuse with the TAGE organization too, and
    // commit exactly the functional stream.
    const Workload &workload = findWorkload("602.gcc_s_1");
    CoreParams params = CoreParams::icelake(FusionMode::Helios);
    params.fpKind = FpKind::Tage;
    RunResult tage = runOne(workload, params, 60'000);
    RunResult tournament =
        runOne(workload, FusionMode::Helios, 60'000);
    EXPECT_EQ(tage.instructions, tournament.instructions);
    EXPECT_GT(tage.stat("pairs.ncsf"), 500u);
    // Both organizations should deliver comparable fusion volume.
    EXPECT_GT(tage.stat("pairs.ncsf"),
              tournament.stat("pairs.ncsf") / 4);
}
