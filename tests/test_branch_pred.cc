/** @file Branch predictor (TAGE + BTB + RAS) tests. */

#include <gtest/gtest.h>

#include "uarch/branch_pred.hh"

using namespace helios;

namespace
{

Instruction
branchInst()
{
    Instruction inst;
    inst.op = Op::Bne;
    inst.rs1 = 5;
    inst.rs2 = 6;
    inst.imm = -16;
    return inst;
}

Instruction
jalInst(uint8_t rd = RegZero)
{
    Instruction inst;
    inst.op = Op::Jal;
    inst.rd = rd;
    return inst;
}

Instruction
jalrInst(uint8_t rd, uint8_t rs1)
{
    Instruction inst;
    inst.op = Op::Jalr;
    inst.rd = rd;
    inst.rs1 = rs1;
    return inst;
}

} // namespace

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Instruction inst = branchInst();
    unsigned wrong = 0;
    for (int i = 0; i < 200; ++i)
        wrong += !bp.predictAndCheck(0x1000, inst, true, 0x0ff0);
    EXPECT_LT(wrong, 5u);
}

TEST(BranchPredictor, LearnsLoopPattern)
{
    BranchPredictor bp;
    const Instruction inst = branchInst();
    // 7 taken, 1 not-taken, repeated: TAGE history should capture it.
    unsigned wrong_late = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 8; ++i) {
            const bool taken = i != 7;
            const bool ok = bp.predictAndCheck(
                0x2000, inst, taken, taken ? 0x1ff0 : 0x2004);
            if (round > 150)
                wrong_late += !ok;
        }
    }
    // 49 × 8 late predictions; allow a small residue.
    EXPECT_LT(wrong_late, 30u);
}

TEST(BranchPredictor, AlternatingPattern)
{
    BranchPredictor bp;
    const Instruction inst = branchInst();
    unsigned wrong_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = i & 1;
        const bool ok = bp.predictAndCheck(0x3000, inst, taken,
                                           taken ? 0x2ff0 : 0x3004);
        if (i > 300)
            wrong_late += !ok;
    }
    EXPECT_LT(wrong_late, 10u);
}

TEST(BranchPredictor, JalLearnsTarget)
{
    BranchPredictor bp;
    const Instruction inst = jalInst();
    EXPECT_FALSE(bp.predictAndCheck(0x4000, inst, true, 0x5000));
    EXPECT_TRUE(bp.predictAndCheck(0x4000, inst, true, 0x5000));
}

TEST(BranchPredictor, CallReturnPairsViaRas)
{
    BranchPredictor bp;
    const Instruction call = jalInst(RegRa);
    const Instruction ret = jalrInst(RegZero, RegRa);

    // Warm the call target.
    bp.predictAndCheck(0x6000, call, true, 0x7000);
    // Nested calls from different sites return correctly through the
    // stack without target training.
    unsigned wrong = 0;
    for (int i = 0; i < 50; ++i) {
        bp.predictAndCheck(0x6000, call, true, 0x7000);
        bp.predictAndCheck(0x7000 + 4 * (i % 3), call, true, 0x8000);
        wrong += !bp.predictAndCheck(0x8100, ret,
                                     true, 0x7004 + 4 * (i % 3));
        wrong += !bp.predictAndCheck(0x7100, ret, true, 0x6004);
    }
    EXPECT_EQ(wrong, 0u);
}

TEST(BranchPredictor, IndirectJumpUsesBtb)
{
    BranchPredictor bp;
    const Instruction jump = jalrInst(RegZero, 7); // not a return
    EXPECT_FALSE(bp.predictAndCheck(0x9000, jump, true, 0xa000));
    EXPECT_TRUE(bp.predictAndCheck(0x9000, jump, true, 0xa000));
    // Target change mispredicts once, then re-learns.
    EXPECT_FALSE(bp.predictAndCheck(0x9000, jump, true, 0xb000));
    EXPECT_TRUE(bp.predictAndCheck(0x9000, jump, true, 0xb000));
}

TEST(BranchPredictor, StatsAccumulate)
{
    BranchPredictor bp;
    const Instruction inst = branchInst();
    for (int i = 0; i < 10; ++i)
        bp.predictAndCheck(0x1000, inst, true, 0x0ff0);
    EXPECT_EQ(bp.lookups, 10u);
    EXPECT_LE(bp.mispredicts, 10u);
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras;
    EXPECT_TRUE(ras.empty());
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // underflow is graceful
}

TEST(Ras, OverflowWrapsOldestEntries)
{
    ReturnAddressStack ras;
    for (unsigned i = 0; i < ReturnAddressStack::depth + 4; ++i)
        ras.push(i);
    // The newest entries survive.
    EXPECT_EQ(ras.pop(), ReturnAddressStack::depth + 3);
    EXPECT_EQ(ras.pop(), ReturnAddressStack::depth + 2);
}
