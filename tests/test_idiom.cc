/** @file Table I idiom matcher tests. */

#include <gtest/gtest.h>

#include "fusion/idiom.hh"

using namespace helios;

namespace
{

Instruction
make(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    return inst;
}

Instruction
load(uint8_t rd, uint8_t base, int64_t imm, Op op = Op::Ld)
{
    return make(op, rd, base, 0, imm);
}

Instruction
store(uint8_t data, uint8_t base, int64_t imm, Op op = Op::Sd)
{
    return make(op, 0, base, data, imm);
}

} // namespace

TEST(Idiom, LoadPairContiguous)
{
    EXPECT_EQ(matchIdiom(load(4, 2, 0), load(5, 2, 8)),
              Idiom::LoadPair);
    EXPECT_EQ(matchIdiom(load(4, 2, 8), load(5, 2, 0)),
              Idiom::LoadPair); // descending order also contiguous
    EXPECT_EQ(matchIdiom(load(4, 2, -16), load(5, 2, -8)),
              Idiom::LoadPair);
}

TEST(Idiom, LoadPairRejectsGapsAndOverlap)
{
    EXPECT_EQ(matchIdiom(load(4, 2, 0), load(5, 2, 16)), Idiom::None);
    EXPECT_EQ(matchIdiom(load(4, 2, 0), load(5, 2, 4)), Idiom::None);
    EXPECT_EQ(matchIdiom(load(4, 2, 0), load(5, 2, 0)), Idiom::None);
}

TEST(Idiom, LoadPairRejectsDifferentBase)
{
    EXPECT_EQ(matchIdiom(load(4, 2, 0), load(5, 3, 8)), Idiom::None);
}

TEST(Idiom, LoadPairRejectsDependentLoads)
{
    // ld x2, 0(x2) ; ld x5, 8(x2): the second depends on the first
    // (Section II-B, dependent loads).
    EXPECT_EQ(matchIdiom(load(2, 2, 0), load(5, 2, 8)), Idiom::None);
}

TEST(Idiom, LoadPairAsymmetric)
{
    // lw + ld contiguous (asymmetric sizes allowed per CSF-SBR).
    EXPECT_EQ(matchIdiom(load(4, 2, 0, Op::Lw), load(5, 2, 4)),
              Idiom::LoadPair);
}

TEST(Idiom, StorePair)
{
    EXPECT_EQ(matchIdiom(store(4, 2, 0), store(5, 2, 8)),
              Idiom::StorePair);
    EXPECT_EQ(matchIdiom(store(4, 2, 0), store(5, 2, 12)), Idiom::None);
    EXPECT_EQ(matchIdiom(store(4, 2, 0), store(5, 3, 8)), Idiom::None);
    EXPECT_EQ(matchIdiom(store(4, 2, 0, Op::Sw), store(5, 2, 4)),
              Idiom::StorePair);
}

TEST(Idiom, MixedMemKindsNeverPair)
{
    EXPECT_EQ(matchIdiom(load(4, 2, 0), store(5, 2, 8)), Idiom::None);
    EXPECT_EQ(matchIdiom(store(4, 2, 0), load(5, 2, 8)), Idiom::None);
}

TEST(Idiom, LeaSlliAdd)
{
    // slli a5, a4, 2 ; add a5, a5, a0
    EXPECT_EQ(matchIdiom(make(Op::Slli, 15, 14, 0, 2),
                         make(Op::Add, 15, 15, 10, 0)),
              Idiom::LeaSlliAdd);
    // commuted add
    EXPECT_EQ(matchIdiom(make(Op::Slli, 15, 14, 0, 3),
                         make(Op::Add, 15, 10, 15, 0)),
              Idiom::LeaSlliAdd);
    // shift amount 4 is not an indexing idiom
    EXPECT_EQ(matchIdiom(make(Op::Slli, 15, 14, 0, 4),
                         make(Op::Add, 15, 15, 10, 0)),
              Idiom::None);
    // different destination breaks the idiom
    EXPECT_EQ(matchIdiom(make(Op::Slli, 15, 14, 0, 2),
                         make(Op::Add, 16, 15, 10, 0)),
              Idiom::None);
}

TEST(Idiom, LuiAddi)
{
    EXPECT_EQ(matchIdiom(make(Op::Lui, 10, 0, 0, 0x12345),
                         make(Op::Addi, 10, 10, 0, 0x67)),
              Idiom::LuiAddi);
    EXPECT_EQ(matchIdiom(make(Op::Lui, 10, 0, 0, 0x12345),
                         make(Op::Addiw, 10, 10, 0, 0x67)),
              Idiom::LuiAddi);
    EXPECT_EQ(matchIdiom(make(Op::Lui, 10, 0, 0, 1),
                         make(Op::Addi, 11, 10, 0, 1)),
              Idiom::None);
}

TEST(Idiom, AuipcAddi)
{
    EXPECT_EQ(matchIdiom(make(Op::Auipc, 10, 0, 0, 4),
                         make(Op::Addi, 10, 10, 0, 16)),
              Idiom::AuipcAddi);
}

TEST(Idiom, ClearUpper)
{
    EXPECT_EQ(matchIdiom(make(Op::Slli, 10, 11, 0, 32),
                         make(Op::Srli, 10, 10, 0, 32)),
              Idiom::ClearUpper);
    // mismatched shift amounts are not a zero-extension
    EXPECT_EQ(matchIdiom(make(Op::Slli, 10, 11, 0, 32),
                         make(Op::Srli, 10, 10, 0, 16)),
              Idiom::None);
}

TEST(Idiom, LuiLoadAndStore)
{
    EXPECT_EQ(matchIdiom(make(Op::Lui, 15, 0, 0, 0x200),
                         load(15, 15, 16)),
              Idiom::LuiLoad);
    EXPECT_EQ(matchIdiom(make(Op::Lui, 15, 0, 0, 0x200),
                         store(10, 15, 16)),
              Idiom::LuiStore);
    // store data register must not be the address register
    EXPECT_EQ(matchIdiom(make(Op::Lui, 15, 0, 0, 0x200),
                         store(15, 15, 16)),
              Idiom::None);
}

TEST(Idiom, MemoryIdiomClassification)
{
    EXPECT_TRUE(isMemoryIdiom(Idiom::LoadPair));
    EXPECT_TRUE(isMemoryIdiom(Idiom::StorePair));
    EXPECT_FALSE(isMemoryIdiom(Idiom::LuiAddi));
    EXPECT_FALSE(isMemoryIdiom(Idiom::LuiLoad));
    EXPECT_FALSE(isMemoryIdiom(Idiom::None));
}

TEST(Idiom, NamesAreDistinct)
{
    EXPECT_STREQ(idiomName(Idiom::LoadPair), "load_pair");
    EXPECT_STREQ(idiomName(Idiom::None), "none");
}

/** Property sweep: symmetric pairs at every width and both orders. */
class PairWidth : public ::testing::TestWithParam<int>
{};

TEST_P(PairWidth, ContiguousPairsMatch)
{
    static const Op load_ops[] = {Op::Lb, Op::Lh, Op::Lw, Op::Ld};
    static const Op store_ops[] = {Op::Sb, Op::Sh, Op::Sw, Op::Sd};
    const int index = GetParam();
    const Op lop = load_ops[index];
    const Op sop = store_ops[index];
    const int64_t size = opInfo(lop).memSize;

    EXPECT_EQ(matchIdiom(load(4, 2, 0, lop), load(5, 2, size, lop)),
              Idiom::LoadPair);
    EXPECT_EQ(matchIdiom(load(4, 2, size, lop), load(5, 2, 0, lop)),
              Idiom::LoadPair);
    EXPECT_EQ(matchIdiom(store(4, 2, 0, sop), store(5, 2, size, sop)),
              Idiom::StorePair);
    // One byte short of contiguous never matches.
    if (size > 1) {
        EXPECT_EQ(
            matchIdiom(load(4, 2, 0, lop), load(5, 2, size - 1, lop)),
            Idiom::None);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PairWidth, ::testing::Range(0, 4));
