/**
 * @file
 * Property test: the disassembler's output is valid assembler input
 * and round-trips to the identical encoding, for every opcode with
 * randomized operands.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/random.hh"
#include "isa/decoder.hh"
#include "isa/disasm.hh"
#include "isa/encoder.hh"

using namespace helios;

namespace
{

class DisasmRoundTrip : public ::testing::TestWithParam<unsigned>
{};

int64_t
randomImmFor(Op op, Rng &rng)
{
    switch (op) {
      case Op::Lui:
      case Op::Auipc:
        return rng.range(-(1 << 19), (1 << 19) - 1);
      case Op::Jal:
        return rng.range(-(1 << 19), (1 << 19) - 1) * 2;
      case Op::Beq: case Op::Bne: case Op::Blt:
      case Op::Bge: case Op::Bltu: case Op::Bgeu:
        return rng.range(-(1 << 11), (1 << 11) - 1) * 2;
      case Op::Slli: case Op::Srli: case Op::Srai:
        return rng.range(0, 63);
      case Op::Slliw: case Op::Srliw: case Op::Sraiw:
        return rng.range(0, 31);
      default:
        return rng.range(-2048, 2047);
    }
}

} // namespace

TEST_P(DisasmRoundTrip, TextSurvivesReassembly)
{
    const Op op = static_cast<Op>(GetParam());
    const OpInfo &info = opInfo(op);
    Rng rng(GetParam() * 7919 + 11);

    for (int trial = 0; trial < 100; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.rd = info.writesRd ? uint8_t(rng.below(32)) : 0;
        inst.rs1 = info.readsRs1 || info.cls == OpClass::Load ||
                           info.cls == OpClass::Store
                       ? uint8_t(rng.below(32))
                       : 0;
        inst.rs2 = info.readsRs2 ? uint8_t(rng.below(32)) : 0;
        const bool has_imm = !info.readsRs2 ||
                             info.cls == OpClass::Store ||
                             info.cls == OpClass::Branch;
        inst.imm = has_imm && info.cls != OpClass::Serializing
                       ? randomImmFor(op, rng)
                       : 0;
        if (op == Op::Jalr)
            inst.rs2 = 0;

        const uint32_t expected = encode(inst);
        const std::string text = disassemble(inst);
        const Program prog = assemble(text);
        ASSERT_EQ(prog.code.size(), 1u) << text;
        EXPECT_EQ(prog.code[0], expected) << text;
    }
}

// The path the annotation tooling takes: assembled machine words are
// decoded and the *decoded* instruction disassembled. That text must
// reassemble to the identical word, for every opcode the assembler
// can emit.
TEST_P(DisasmRoundTrip, DecodedWordSurvivesReassembly)
{
    const Op op = static_cast<Op>(GetParam());
    const OpInfo &info = opInfo(op);
    Rng rng(GetParam() * 6007 + 13);

    for (int trial = 0; trial < 100; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.rd = info.writesRd ? uint8_t(rng.below(32)) : 0;
        inst.rs1 = info.readsRs1 || info.cls == OpClass::Load ||
                           info.cls == OpClass::Store
                       ? uint8_t(rng.below(32))
                       : 0;
        inst.rs2 = info.readsRs2 ? uint8_t(rng.below(32)) : 0;
        const bool has_imm = !info.readsRs2 ||
                             info.cls == OpClass::Store ||
                             info.cls == OpClass::Branch;
        inst.imm = has_imm && info.cls != OpClass::Serializing
                       ? randomImmFor(op, rng)
                       : 0;
        if (op == Op::Jalr)
            inst.rs2 = 0;

        const uint32_t word = encode(inst);
        const Program source = assemble(disassemble(inst));
        ASSERT_EQ(source.code.size(), 1u);
        ASSERT_EQ(source.code[0], word);

        const Instruction decoded = decode(source.code[0]);
        EXPECT_EQ(decoded.op, op);
        const std::string text = disassemble(decoded);
        const Program prog = assemble(text);
        ASSERT_EQ(prog.code.size(), 1u) << text;
        EXPECT_EQ(prog.code[0], word) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmRoundTrip,
    ::testing::Range(1u, unsigned(Op::NumOps)),
    [](const ::testing::TestParamInfo<unsigned> &info) {
        std::string name = opName(static_cast<Op>(info.param));
        for (char &c : name)
            if (c == '.')
                c = '_';
        return name;
    });
