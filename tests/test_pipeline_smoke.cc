/** @file Pipeline smoke test: run one workload under every mode. */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace helios;

TEST(PipelineSmoke, McfAllModes)
{
    const Workload &w = findWorkload("605.mcf_s");
    for (FusionMode mode :
         {FusionMode::None, FusionMode::RiscvFusion, FusionMode::CsfSbr,
          FusionMode::RiscvFusionPP, FusionMode::Helios,
          FusionMode::Oracle}) {
        RunResult r = runOne(w, mode, 50'000);
        EXPECT_GT(r.instructions, 49'000u) << fusionModeName(mode);
        EXPECT_GT(r.ipc(), 0.1) << fusionModeName(mode);
        EXPECT_LT(r.ipc(), 8.0) << fusionModeName(mode);
    }
}
