/**
 * @file
 * Helios corner-case tests with hand-crafted programs exercising the
 * repair machinery of Sections IV-B and IV-C: dependence deadlocks,
 * serializing catalysts, region mispredictions and ordering
 * violations. Every run must still commit the exact functional stream.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "harness/runner.hh"
#include "sim/hart.hh"
#include "uarch/pipeline.hh"

using namespace helios;

namespace
{

/** Run raw assembly through the pipeline under a fusion mode. */
RunResult
runAsm(const std::string &body, FusionMode mode,
       uint64_t max_insts = 400'000)
{
    const std::string source = body + R"(
        .text
        li a7, 93
        ecall
    )";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    HartFeed feed(hart, max_insts);
    CoreParams params = CoreParams::icelake(mode);
    Pipeline pipeline(params, feed);
    const PipelineResult pres = pipeline.run();
    RunResult result;
    result.cycles = pres.cycles;
    result.instructions = pres.instructions;
    result.uops = pres.uops;
    result.stats = pipeline.stats();
    return result;
}

uint64_t
functionalLength(const std::string &body, uint64_t max_insts = 400'000)
{
    const std::string source = body + R"(
        .text
        li a7, 93
        ecall
    )";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    return hart.run(max_insts);
}

} // namespace

TEST(Helios, PredictorFusesRecurringSameLinePairs)
{
    // Two same-line loads separated by ALU work: classic NCSF.
    const std::string body = R"(
        la x2, buf
        li s0, 4000
    loop:
        ld x5, 0(x2)
        add x6, x5, x5
        xor x6, x6, x5
        add x6, x6, x6
        ld x7, 16(x2)
        add x8, x7, x6
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    // A handful of UCH matches suffice to train the predictor; once
    // fused, pairs stop entering the UCH.
    EXPECT_GT(r.stat("uch.matches"), 2u);
    EXPECT_GT(r.stat("pairs.ncsf"), 1000u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, DependentPairIsUnfusedNotDeadlocked)
{
    // The tail's base depends on the head's result through the
    // catalyst: the UCH/FP will propose the fusion (same line), and
    // the rename-time dependence check must unfuse it (case 2 of
    // Section IV-C) rather than hang.
    const std::string body = R"(
        la x2, buf
        sd x2, 0(x2)     # buf[0] holds the buffer's own address
        li s0, 3000
    loop:
        ld x5, 0(x2)     # x5 = &buf
        andi x6, x5, 0   # x6 = 0, but depends on x5
        add x7, x6, x2   # x7 = &buf, depends on x5
        ld x8, 8(x7)     # same line as the first load, DBR
        add x9, x8, x5
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x9
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    // The repair fires repeatedly until the per-PC strike suppression
    // stops the predictor from proposing the doomed pair at all.
    EXPECT_GT(r.stat("fusion.unfuse_deadlock"), 5u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, SerializingCatalystUnfuses)
{
    // A fence between two same-line loads: once trained, the pair is
    // fused speculatively and must be unfused when the fence renames
    // (case 4 of Section IV-C).
    const std::string body = R"(
        la x2, buf
        li s0, 2000
    loop:
        ld x5, 0(x2)
        fence
        ld x7, 8(x2)
        add x8, x5, x7
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    // Fires until strike suppression retires the pair (see above).
    EXPECT_GT(r.stat("fusion.unfuse_serializing"), 5u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, StoreInCatalystUnfusesStorePair)
{
    // The trained pair crosses the loop back-edge; a balanced diamond
    // in its catalyst occasionally contains a store to a distant
    // line, which must unfuse the pending store pair at rename
    // (case 3, Section IV-B4).
    const std::string body = R"(
        la x2, buf
        la x3, far
        li s0, 4000
    loop:
        sd s0, 0(x2)
        li t0, 2654435761
        mul t0, t0, s0
        srli t0, t0, 28
        andi t0, t0, 15
        beqz t0, alt
        addi t1, t1, 1
        j join
    alt:
        sd s0, 64(x3)
        addi t2, t2, 1
    join:
        sd s0, 8(x2)
        andi t5, s0, 31
        slli t5, t5, 7
        add t5, t5, x3
        sd s0, 1024(t5)
        addi s0, s0, -1
        bnez s0, loop
        mv a0, t1
        .data
        .align 6
    buf:
        .zero 64
        .align 6
    far:
        .zero 8192
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("fusion.fp_applied"), 100u);
    // The repair fires on the first far-path occurrences; afterwards
    // the tournament migrates to the history-indexed component, which
    // learns not to predict fusion on the store-carrying path at all
    // (an emergent, and desirable, predictor behaviour).
    EXPECT_GE(r.stat("fusion.unfuse_store_catalyst"), 2u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, RegionMispredictFlushesAndRetrains)
{
    // The pair's distance is stable but the second address
    // periodically jumps out of the 64-byte region: case 5 flushes,
    // resets confidence, and execution stays architecturally exact.
    const std::string body = R"(
        la x2, buf
        li s0, 3000
        li s2, 0
    loop:
        andi t0, s0, 63
        snez t1, t0
        slli t1, t1, 3       # 8 when in-region, 0 -> far offset below
        sltiu t2, t1, 1
        slli t2, t2, 9       # 512 when t1 == 0
        or t1, t1, t2
        add t3, x2, t1
        ld x5, 0(x2)
        add s2, s2, x5
        ld x6, 0(t3)
        add s2, s2, x6
        addi s0, s0, -1
        bnez s0, loop
        mv a0, s2
        .data
        .align 6
    buf:
        .zero 1024
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("fusion.mispredict_region"), 5u);
    EXPECT_GT(r.stat("flush.fusion_region"), 5u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, HoistedPairViolationRetrainsPredictor)
{
    // A store between two same-line loads writes bytes the second
    // load reads: hoisting the pair causes an ordering violation; the
    // fusion predictor must lose confidence instead of looping.
    const std::string body = R"(
        la x2, buf
        li s0, 4000
    loop:
        ld x5, 0(x2)
        addi x6, x5, 1
        sd x6, 8(x2)
        ld x7, 8(x2)
        add x8, x7, x5
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_EQ(r.instructions, functionalLength(body));
    // Either the pair never fused (store-to-load forwarding serves the
    // tail) or violations retrained the predictor; both are sound, but
    // the run must not livelock in violation flushes.
    EXPECT_LT(r.stat("flush.order_violation"), 400u);
}

TEST(Helios, NestDepthLimitsConcurrentFusions)
{
    // Four interleavable same-line pairs per iteration: with nest
    // depth 2, some head nucleii entering rename must revert.
    const std::string body = R"(
        la x2, buf
        la x3, buf2
        li s0, 3000
    loop:
        ld x5, 0(x2)
        ld x6, 0(x3)
        add t0, x5, x6
        add t0, t0, t0
        ld x7, 8(x2)
        ld x8, 8(x3)
        add t1, x7, x8
        add a0, t0, t1
        addi s0, s0, -1
        bnez s0, loop
        .data
        .align 6
    buf:
        .zero 64
        .align 6
    buf2:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("fusion.fp_applied"), 500u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, OracleFusesWithoutPredictor)
{
    const std::string body = R"(
        la x2, buf
        li s0, 3000
    loop:
        ld x5, 0(x2)
        add x6, x5, x5
        ld x7, 16(x2)
        add x8, x7, x6
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Oracle);
    EXPECT_GT(r.stat("fusion.oracle_applied"), 2000u);
    EXPECT_EQ(r.stat("fusion.fp_applied"), 0u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, DbrLoadPairsFuse)
{
    // Same line through two different base registers: invisible to
    // static fusion, captured by the predictive scheme (Section
    // IV-B5).
    const std::string body = R"(
        la x2, buf
        addi x3, x2, 8
        li s0, 3000
    loop:
        ld x5, 0(x2)
        add x6, x5, x5
        ld x7, 0(x3)
        add x8, x7, x6
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("pairs.dbr"), 1000u);
    EXPECT_EQ(r.instructions, functionalLength(body));

    // CSF-SBR cannot touch these.
    RunResult csf = runAsm(body, FusionMode::CsfSbr);
    EXPECT_EQ(csf.stat("pairs.csf_mem") + csf.stat("pairs.ncsf"), 0u);
}

TEST(Helios, AsymmetricPairsFuse)
{
    const std::string body = R"(
        la x2, buf
        li s0, 3000
    loop:
        lw x5, 0(x2)
        add x6, x5, x5
        ld x7, 8(x2)
        add x8, x7, x6
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x8
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("pairs.ncsf"), 1000u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}

TEST(Helios, StorePairsRelieveStoreQueue)
{
    // A store burst to a large region: store pairs halve SQ entries.
    const std::string body = R"(
        la x2, buf
        li s0, 6000
        mv t0, x2
    loop:
        sd s0, 0(t0)
        sd s0, 8(t0)
        sd s0, 16(t0)
        sd s0, 24(t0)
        addi t0, t0, 32
        andi t1, s0, 1023
        bnez t1, no_reset
        mv t0, x2
    no_reset:
        addi s0, s0, -1
        bnez s0, loop
        li a0, 0
        .data
        .align 6
    buf:
        .zero 262144
    )";
    RunResult none = runAsm(body, FusionMode::None);
    RunResult csf = runAsm(body, FusionMode::CsfSbr);
    EXPECT_GT(csf.stat("pairs.csf_mem"), 5000u);
    EXPECT_LE(csf.cycles, none.cycles);
}

TEST(Helios, DbrStorePairKnob)
{
    // Stores through two bases into the same line: rejected by
    // default (Section IV-B), fusable with the knob enabled.
    const std::string body = R"(
        la x2, buf
        addi x3, x2, 8
        li s0, 3000
    loop:
        sd s0, 0(x2)
        addi t1, t1, 1
        sd s0, 0(x3)
        addi s0, s0, -1
        bnez s0, loop
        mv a0, t1
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult off = runAsm(body, FusionMode::Helios);
    EXPECT_EQ(off.stat("pairs.ncsf"), 0u);
    EXPECT_GT(off.stat("fusion.fp_store_dbr"), 100u);

    const std::string source = body + "\n.text\nli a7, 93\necall\n";
    Memory mem;
    Hart hart(mem);
    hart.reset(assemble(source));
    HartFeed feed(hart, 400'000);
    CoreParams params = CoreParams::icelake(FusionMode::Helios);
    params.fuseDbrStorePairs = true;
    Pipeline pipeline(params, feed);
    pipeline.run();
    EXPECT_GT(pipeline.stats().get("pairs.ncsf"), 1000u);
    EXPECT_GT(pipeline.stats().get("pairs.dbr"), 1000u);
}

TEST(Helios, PaperFigure1Example)
{
    // The exact example of Figure 1: head `ld x1, 0(x2)`, a
    // three-instruction catalyst with no dependence on the nucleii,
    // tail `ld x3, 8(x2)` — fused into one contiguous NCSF'd
    // load-pair µ-op at distance 4.
    const std::string body = R"(
        la x2, buf
        li s0, 3000
    loop:
        ld x1, 0(x2)
        add x7, x8, x5
        sub x12, x7, x11
        mv x15, x8
        ld x3, 8(x2)
        add x9, x1, x3
        addi s0, s0, -1
        bnez s0, loop
        mv a0, x9
        .data
        .align 6
    buf:
        .zero 64
    )";
    RunResult r = runAsm(body, FusionMode::Helios);
    EXPECT_GT(r.stat("pairs.ncsf"), 2000u);
    // distance = 4 µ-ops (three catalyst instructions in between).
    EXPECT_EQ(r.stat("pairs.distance_sum") / r.stat("pairs.ncsf"), 4u);
    EXPECT_EQ(r.stat("fusion.mispredicts"), 0u);
    EXPECT_EQ(r.instructions, functionalLength(body));
}
