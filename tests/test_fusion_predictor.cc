/** @file Tournament fusion predictor tests (Section IV-A2). */

#include <gtest/gtest.h>

#include "fusion/fusion_predictor.hh"

using namespace helios;

namespace
{

constexpr uint64_t pc = 0x10440;
constexpr uint16_t hist = 0x5a;

/** Train the same (pc, history, distance) n times. */
void
trainN(FusionPredictor &fp, unsigned n, unsigned distance,
       uint64_t at = pc, uint16_t history = hist)
{
    for (unsigned i = 0; i < n; ++i)
        fp.train(at, history, distance);
}

} // namespace

TEST(FusionPredictor, ColdLookupInvalid)
{
    FusionPredictor fp;
    EXPECT_FALSE(fp.lookup(pc, hist).valid);
}

TEST(FusionPredictor, ConfidenceGatesPrediction)
{
    FusionPredictor fp;
    trainN(fp, 1, 12);
    EXPECT_FALSE(fp.lookup(pc, hist).valid); // conf 1
    trainN(fp, 1, 12);
    EXPECT_FALSE(fp.lookup(pc, hist).valid); // conf 2
    trainN(fp, 1, 12);
    FpPrediction pred = fp.lookup(pc, hist); // conf 3 (saturated)
    EXPECT_TRUE(pred.valid);
    EXPECT_EQ(pred.distance, 12u);
}

TEST(FusionPredictor, DistanceChangeResetsConfidence)
{
    FusionPredictor fp;
    trainN(fp, 3, 12);
    EXPECT_TRUE(fp.lookup(pc, hist).valid);
    trainN(fp, 1, 7); // new distance: confidence back to 1
    EXPECT_FALSE(fp.lookup(pc, hist).valid);
    trainN(fp, 2, 7);
    FpPrediction pred = fp.lookup(pc, hist);
    EXPECT_TRUE(pred.valid);
    EXPECT_EQ(pred.distance, 7u);
}

TEST(FusionPredictor, MispredictionResetsConfidence)
{
    FusionPredictor fp;
    trainN(fp, 3, 12);
    FpPrediction pred = fp.lookup(pc, hist);
    ASSERT_TRUE(pred.valid);
    fp.resolve(pred, false);
    EXPECT_FALSE(fp.lookup(pc, hist).valid);
    // Retraining restores it.
    trainN(fp, 3, 12);
    EXPECT_TRUE(fp.lookup(pc, hist).valid);
}

TEST(FusionPredictor, CorrectResolutionKeepsConfidence)
{
    FusionPredictor fp;
    trainN(fp, 3, 12);
    FpPrediction pred = fp.lookup(pc, hist);
    fp.resolve(pred, true);
    EXPECT_TRUE(fp.lookup(pc, hist).valid);
}

TEST(FusionPredictor, ZeroAndOverlongDistancesNeverTrain)
{
    FusionPredictor fp;
    trainN(fp, 5, 0);
    EXPECT_FALSE(fp.lookup(pc, hist).valid);
    trainN(fp, 5, 64); // 6-bit field holds at most 63
    EXPECT_FALSE(fp.lookup(pc, hist).valid);
}

TEST(FusionPredictor, GlobalComponentDistinguishesHistories)
{
    FusionPredictor fp;
    // Same PC, different branch histories, different distances: the
    // global component can hold both; the local component keeps
    // flapping and never saturates.
    for (unsigned i = 0; i < 6; ++i) {
        fp.train(pc, 0x11, 8);
        fp.train(pc, 0x2e, 24);
    }
    const FpPrediction a = fp.lookup(pc, 0x11);
    const FpPrediction b = fp.lookup(pc, 0x2e);
    EXPECT_TRUE(a.globalValid);
    EXPECT_TRUE(b.globalValid);
    EXPECT_EQ(a.globalDistance, 8u);
    EXPECT_EQ(b.globalDistance, 24u);
    EXPECT_FALSE(a.localValid); // local confidence keeps resetting
}

TEST(FusionPredictor, SelectorSteeringAfterDisagreement)
{
    FusionPredictor fp;
    // Build disagreeing components: local sees alternating distances,
    // global (distinct histories) sees stable ones.
    for (unsigned i = 0; i < 8; ++i) {
        fp.train(pc, 0x11, 8);
        fp.train(pc, 0x2e, 24);
    }
    // Both global entries confident; with history 0x11 the selector
    // should eventually deliver the global prediction of 8.
    FpPrediction pred = fp.lookup(pc, 0x11);
    ASSERT_TRUE(pred.globalValid);
    if (pred.valid) {
        EXPECT_EQ(pred.distance, 8u);
    }
}

TEST(FusionPredictor, ManyPcsCoexist)
{
    FusionPredictor fp;
    for (uint64_t p = 0; p < 128; ++p)
        trainN(fp, 3, unsigned(p % 62) + 1, 0x40000 + p * 4, 0);
    unsigned valid = 0;
    for (uint64_t p = 0; p < 128; ++p) {
        FpPrediction pred = fp.lookup(0x40000 + p * 4, 0);
        if (pred.valid) {
            ++valid;
            EXPECT_EQ(pred.distance, unsigned(p % 62) + 1);
        }
    }
    // 4-way sets: all 128 distinct PCs spread over 512 sets fit.
    EXPECT_GT(valid, 120u);
}

TEST(FusionPredictor, StatisticsCount)
{
    FusionPredictor fp;
    trainN(fp, 3, 5);
    fp.lookup(pc, hist);
    fp.lookup(pc + 64, hist);
    EXPECT_EQ(fp.lookups, 2u);
    EXPECT_EQ(fp.confidentPredictions, 1u);
}
