/** @file Assembler tests: syntax, pseudo-ops, labels, data, errors. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "isa/decoder.hh"
#include "isa/disasm.hh"

using namespace helios;

namespace
{

Instruction
instAt(const Program &prog, size_t index)
{
    return decode(prog.code.at(index));
}

} // namespace

TEST(Assembler, BasicInstructions)
{
    Program prog = assemble(R"(
        add a0, a1, a2
        addi t0, t1, -16
        ld s0, 24(sp)
        sd s1, -8(sp)
    )");
    ASSERT_EQ(prog.code.size(), 4u);
    EXPECT_EQ(disassemble(instAt(prog, 0)), "add a0, a1, a2");
    EXPECT_EQ(disassemble(instAt(prog, 1)), "addi t0, t1, -16");
    EXPECT_EQ(disassemble(instAt(prog, 2)), "ld s0, 24(sp)");
    EXPECT_EQ(disassemble(instAt(prog, 3)), "sd s1, -8(sp)");
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program prog = assemble(R"(
        # full-line comment
        nop        // trailing comment
        nop        ; alt comment
    )");
    EXPECT_EQ(prog.code.size(), 2u);
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Program prog = assemble(R"(
    top:
        addi a0, a0, 1
        beq a0, a1, done
        j top
    done:
        ret
    )");
    ASSERT_EQ(prog.code.size(), 4u);
    // beq at index 1 jumps to index 3: offset +8.
    EXPECT_EQ(instAt(prog, 1).imm, 8);
    // j (jal) at index 2 jumps back to index 0: offset -8.
    EXPECT_EQ(instAt(prog, 2).op, Op::Jal);
    EXPECT_EQ(instAt(prog, 2).imm, -8);
}

TEST(Assembler, LiSmall)
{
    Program prog = assemble("li a0, 42");
    ASSERT_EQ(prog.code.size(), 1u);
    EXPECT_EQ(disassemble(instAt(prog, 0)), "addi a0, zero, 42");
}

TEST(Assembler, Li32Bit)
{
    Program prog = assemble("li a0, 0x12345678");
    ASSERT_EQ(prog.code.size(), 2u);
    EXPECT_EQ(instAt(prog, 0).op, Op::Lui);
    EXPECT_EQ(instAt(prog, 1).op, Op::Addiw);
}

TEST(Assembler, Li64Bit)
{
    Program prog = assemble("li a0, 0x123456789abcdef0");
    EXPECT_GT(prog.code.size(), 4u);
    EXPECT_EQ(instAt(prog, 0).op, Op::Lui);
}

TEST(Assembler, LaResolvesDataLabel)
{
    Program prog = assemble(R"(
        la a0, table
        ret
        .data
        .align 3
    table:
        .dword 1, 2, 3
    )");
    const uint64_t addr = prog.symbol("table");
    EXPECT_EQ(addr, prog.dataBase);
    ASSERT_GE(prog.code.size(), 2u);
    const Instruction hi = instAt(prog, 0);
    const Instruction lo = instAt(prog, 1);
    EXPECT_EQ(hi.op, Op::Lui);
    EXPECT_EQ(lo.op, Op::Addiw);
    const int64_t value =
        (hi.imm << 12) + lo.imm;
    EXPECT_EQ(uint64_t(value), addr);
}

TEST(Assembler, DataDirectives)
{
    Program prog = assemble(R"(
        .data
    bytes:
        .byte 1, 2, 0xff
        .half 0x1234
        .word -1
        .dword 0x0102030405060708
    tail:
        .zero 4
    )");
    ASSERT_EQ(prog.data.size(), 3u + 2 + 4 + 8 + 4);
    EXPECT_EQ(prog.data[0], 1);
    EXPECT_EQ(prog.data[2], 0xff);
    EXPECT_EQ(prog.data[3], 0x34); // little endian half
    EXPECT_EQ(prog.data[4], 0x12);
    EXPECT_EQ(prog.data[5], 0xff); // -1 word
    EXPECT_EQ(prog.data[9], 0x08); // little endian dword
    EXPECT_EQ(prog.symbol("tail"), prog.dataBase + 17);
}

TEST(Assembler, AlignPadsData)
{
    Program prog = assemble(R"(
        .data
        .byte 1
        .align 3
    aligned:
        .dword 7
    )");
    EXPECT_EQ(prog.symbol("aligned") % 8, 0u);
}

TEST(Assembler, Asciz)
{
    Program prog = assemble(R"(
        .data
    msg:
        .asciz "hi\n"
    )");
    ASSERT_EQ(prog.data.size(), 4u);
    EXPECT_EQ(prog.data[0], 'h');
    EXPECT_EQ(prog.data[1], 'i');
    EXPECT_EQ(prog.data[2], '\n');
    EXPECT_EQ(prog.data[3], 0);
}

TEST(Assembler, PseudoExpansions)
{
    Program prog = assemble(R"(
        mv a0, a1
        not a2, a3
        neg a4, a5
        seqz t0, t1
        snez t2, t3
        sext.w s2, s3
        ret
    )");
    EXPECT_EQ(disassemble(instAt(prog, 0)), "addi a0, a1, 0");
    EXPECT_EQ(disassemble(instAt(prog, 1)), "xori a2, a3, -1");
    EXPECT_EQ(disassemble(instAt(prog, 2)), "sub a4, zero, a5");
    EXPECT_EQ(disassemble(instAt(prog, 3)), "sltiu t0, t1, 1");
    EXPECT_EQ(disassemble(instAt(prog, 4)), "sltu t2, zero, t3");
    EXPECT_EQ(disassemble(instAt(prog, 5)), "addiw s2, s3, 0");
    EXPECT_EQ(disassemble(instAt(prog, 6)), "jalr zero, 0(ra)");
}

TEST(Assembler, BranchPseudos)
{
    Program prog = assemble(R"(
    l:
        beqz a0, l
        bnez a0, l
        blez a0, l
        bgez a0, l
        bltz a0, l
        bgtz a0, l
        bgt a0, a1, l
        ble a0, a1, l
        bgtu a0, a1, l
        bleu a0, a1, l
    )");
    EXPECT_EQ(instAt(prog, 0).op, Op::Beq);
    EXPECT_EQ(instAt(prog, 1).op, Op::Bne);
    EXPECT_EQ(instAt(prog, 2).op, Op::Bge);
    EXPECT_EQ(instAt(prog, 2).rs1, RegZero);
    EXPECT_EQ(instAt(prog, 3).op, Op::Bge);
    EXPECT_EQ(instAt(prog, 4).op, Op::Blt);
    EXPECT_EQ(instAt(prog, 5).op, Op::Blt);
    // bgt a0,a1 -> blt a1,a0
    EXPECT_EQ(instAt(prog, 6).op, Op::Blt);
    EXPECT_EQ(instAt(prog, 6).rs1, RegA1);
    EXPECT_EQ(instAt(prog, 6).rs2, RegA0);
    EXPECT_EQ(instAt(prog, 9).op, Op::Bgeu);
}

TEST(Assembler, CallAndJr)
{
    Program prog = assemble(R"(
        call func
        jr t0
    func:
        ret
    )");
    EXPECT_EQ(instAt(prog, 0).op, Op::Jal);
    EXPECT_EQ(instAt(prog, 0).rd, RegRa);
    EXPECT_EQ(instAt(prog, 0).imm, 8);
    EXPECT_EQ(instAt(prog, 1).op, Op::Jalr);
    EXPECT_EQ(instAt(prog, 1).rs1, RegT0);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus a0, a1"), FatalError);
    EXPECT_THROW(assemble("add a0, a1"), FatalError);
    EXPECT_THROW(assemble("add a0, a1, q9"), FatalError);
    EXPECT_THROW(assemble("j nowhere"), FatalError);
    EXPECT_THROW(assemble("l: nop\nl: nop"), FatalError);
    EXPECT_THROW(assemble(".word 1"), FatalError); // outside .data
    EXPECT_THROW(assemble("addi a0, a0, 100000"), FatalError);
}

TEST(Assembler, MultipleLabelsSameAddress)
{
    Program prog = assemble(R"(
    a: b:
        nop
    )");
    EXPECT_EQ(prog.symbol("a"), prog.symbol("b"));
    EXPECT_EQ(prog.symbol("a"), prog.textBase);
}
