/**
 * @file
 * Golden-number regression test: pins the headline metrics (IPC and
 * fused-pair percentage, 4 decimal places) of two representative
 * workloads under the Helios configuration against a checked-in
 * golden file. Any change to the timing model, fusion legality rules
 * or scheduler that moves these numbers — intentionally or not —
 * shows up as a one-line diff here instead of silently shifting the
 * paper's figures.
 *
 * To regenerate after an intentional model change:
 *
 *   HELIOS_UPDATE_GOLDEN=1 ./tests/test_golden
 *
 * then commit the updated tests/golden/headline.txt alongside the
 * change that moved the numbers.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace helios;

namespace
{

constexpr uint64_t goldenBudget = 50'000;
const char *const goldenWorkloads[] = {"605.mcf_s", "qsort"};

/** Format one workload's headline metrics as a golden-file line. */
std::string
headlineLine(const RunResult &result)
{
    const uint64_t pairs = result.stat("pairs.csf_mem") +
                           result.stat("pairs.csf_other") +
                           result.stat("pairs.ncsf");
    const double fused_pct =
        result.instructions
            ? 200.0 * double(pairs) / double(result.instructions)
            : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "%s Helios ipc=%.4f fused_pct=%.4f",
                  result.workload.c_str(), result.ipc(), fused_pct);
    return line;
}

std::string
currentHeadlines()
{
    std::string text;
    for (const char *name : goldenWorkloads) {
        const RunResult result = runOne(
            findWorkload(name), FusionMode::Helios, goldenBudget);
        text += headlineLine(result) + "\n";
    }
    return text;
}

} // namespace

TEST(Golden, HeadlineNumbersMatchGoldenFile)
{
    const std::string current = currentHeadlines();

    if (std::getenv("HELIOS_UPDATE_GOLDEN")) {
        std::ofstream out(GOLDEN_FILE);
        ASSERT_TRUE(out) << "cannot write " << GOLDEN_FILE;
        out << current;
        GTEST_SKIP() << "golden file regenerated: " << GOLDEN_FILE;
    }

    std::ifstream in(GOLDEN_FILE);
    ASSERT_TRUE(in) << "missing golden file " << GOLDEN_FILE
                    << " (run with HELIOS_UPDATE_GOLDEN=1 to create)";
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(current, golden.str())
        << "headline metrics moved; if intentional, regenerate with "
           "HELIOS_UPDATE_GOLDEN=1 ./tests/test_golden and commit the "
           "new golden file";
}
