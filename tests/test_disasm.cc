/** @file Disassembler formatting tests. */

#include <gtest/gtest.h>

#include "isa/decoder.hh"
#include "isa/disasm.hh"
#include "isa/encoder.hh"

using namespace helios;

namespace
{

Instruction
make(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    return inst;
}

} // namespace

TEST(Disasm, Alu)
{
    EXPECT_EQ(disassemble(make(Op::Add, 10, 11, 12, 0)),
              "add a0, a1, a2");
    EXPECT_EQ(disassemble(make(Op::Addi, 10, 10, 0, -8)),
              "addi a0, a0, -8");
    EXPECT_EQ(disassemble(make(Op::Slli, 5, 6, 0, 3)),
              "slli t0, t1, 3");
}

TEST(Disasm, Memory)
{
    EXPECT_EQ(disassemble(make(Op::Ld, 4, 1, 0, 8)), "ld tp, 8(ra)");
    EXPECT_EQ(disassemble(make(Op::Sw, 0, 2, 5, -4)), "sw t0, -4(sp)");
}

TEST(Disasm, Control)
{
    EXPECT_EQ(disassemble(make(Op::Beq, 0, 10, 11, 16)),
              "beq a0, a1, 16");
    EXPECT_EQ(disassemble(make(Op::Jal, 1, 0, 0, -32)), "jal ra, -32");
    EXPECT_EQ(disassemble(make(Op::Jalr, 0, 1, 0, 0)),
              "jalr zero, 0(ra)");
}

TEST(Disasm, UpperImmediate)
{
    EXPECT_EQ(disassemble(make(Op::Lui, 5, 0, 0, 0x12)), "lui t0, 18");
}

TEST(Disasm, System)
{
    EXPECT_EQ(disassemble(make(Op::Ecall, 0, 0, 0, 0)), "ecall");
    EXPECT_EQ(disassemble(make(Op::Fence, 0, 0, 0, 0)), "fence");
}

TEST(Disasm, EveryOpcodeRendersNonEmpty)
{
    for (unsigned i = 1; i < unsigned(Op::NumOps); ++i) {
        Instruction inst = make(static_cast<Op>(i), 1, 2, 3, 4);
        const std::string text = disassemble(inst);
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(text.find(opName(inst.op)), 0u) << text;
    }
}
