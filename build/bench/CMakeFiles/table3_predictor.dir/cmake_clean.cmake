file(REMOVE_RECURSE
  "CMakeFiles/table3_predictor.dir/table3_predictor.cc.o"
  "CMakeFiles/table3_predictor.dir/table3_predictor.cc.o.d"
  "table3_predictor"
  "table3_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
