# Empty dependencies file for table3_predictor.
# This may be replaced when dependencies are built.
