file(REMOVE_RECURSE
  "CMakeFiles/fig03_memory_vs_all.dir/fig03_memory_vs_all.cc.o"
  "CMakeFiles/fig03_memory_vs_all.dir/fig03_memory_vs_all.cc.o.d"
  "fig03_memory_vs_all"
  "fig03_memory_vs_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_memory_vs_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
