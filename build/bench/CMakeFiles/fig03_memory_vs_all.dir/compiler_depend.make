# Empty compiler generated dependencies file for fig03_memory_vs_all.
# This may be replaced when dependencies are built.
