# Empty dependencies file for fig04_csf_categories.
# This may be replaced when dependencies are built.
