file(REMOVE_RECURSE
  "CMakeFiles/fig04_csf_categories.dir/fig04_csf_categories.cc.o"
  "CMakeFiles/fig04_csf_categories.dir/fig04_csf_categories.cc.o.d"
  "fig04_csf_categories"
  "fig04_csf_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_csf_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
