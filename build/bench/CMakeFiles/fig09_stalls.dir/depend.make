# Empty dependencies file for fig09_stalls.
# This may be replaced when dependencies are built.
