file(REMOVE_RECURSE
  "CMakeFiles/fig09_stalls.dir/fig09_stalls.cc.o"
  "CMakeFiles/fig09_stalls.dir/fig09_stalls.cc.o.d"
  "fig09_stalls"
  "fig09_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
