# Empty compiler generated dependencies file for fig02_fusion_pairs.
# This may be replaced when dependencies are built.
