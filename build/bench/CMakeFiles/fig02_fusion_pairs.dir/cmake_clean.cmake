file(REMOVE_RECURSE
  "CMakeFiles/fig02_fusion_pairs.dir/fig02_fusion_pairs.cc.o"
  "CMakeFiles/fig02_fusion_pairs.dir/fig02_fusion_pairs.cc.o.d"
  "fig02_fusion_pairs"
  "fig02_fusion_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fusion_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
