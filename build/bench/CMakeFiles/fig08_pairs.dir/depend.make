# Empty dependencies file for fig08_pairs.
# This may be replaced when dependencies are built.
