file(REMOVE_RECURSE
  "CMakeFiles/fig08_pairs.dir/fig08_pairs.cc.o"
  "CMakeFiles/fig08_pairs.dir/fig08_pairs.cc.o.d"
  "fig08_pairs"
  "fig08_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
