# Empty compiler generated dependencies file for ablation_helios.
# This may be replaced when dependencies are built.
