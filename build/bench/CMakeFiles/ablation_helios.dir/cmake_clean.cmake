file(REMOVE_RECURSE
  "CMakeFiles/ablation_helios.dir/ablation_helios.cc.o"
  "CMakeFiles/ablation_helios.dir/ablation_helios.cc.o.d"
  "ablation_helios"
  "ablation_helios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_helios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
