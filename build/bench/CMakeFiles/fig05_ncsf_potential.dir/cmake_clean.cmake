file(REMOVE_RECURSE
  "CMakeFiles/fig05_ncsf_potential.dir/fig05_ncsf_potential.cc.o"
  "CMakeFiles/fig05_ncsf_potential.dir/fig05_ncsf_potential.cc.o.d"
  "fig05_ncsf_potential"
  "fig05_ncsf_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ncsf_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
