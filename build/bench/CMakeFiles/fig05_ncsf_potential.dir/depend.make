# Empty dependencies file for fig05_ncsf_potential.
# This may be replaced when dependencies are built.
