# Empty dependencies file for test_hart_fuzz.
# This may be replaced when dependencies are built.
