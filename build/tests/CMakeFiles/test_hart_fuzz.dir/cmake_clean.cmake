file(REMOVE_RECURSE
  "CMakeFiles/test_hart_fuzz.dir/test_hart_fuzz.cc.o"
  "CMakeFiles/test_hart_fuzz.dir/test_hart_fuzz.cc.o.d"
  "test_hart_fuzz"
  "test_hart_fuzz.pdb"
  "test_hart_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hart_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
