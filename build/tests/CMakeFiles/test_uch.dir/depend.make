# Empty dependencies file for test_uch.
# This may be replaced when dependencies are built.
