file(REMOVE_RECURSE
  "CMakeFiles/test_uch.dir/test_uch.cc.o"
  "CMakeFiles/test_uch.dir/test_uch.cc.o.d"
  "test_uch"
  "test_uch.pdb"
  "test_uch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
