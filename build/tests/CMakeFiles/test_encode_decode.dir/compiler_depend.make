# Empty compiler generated dependencies file for test_encode_decode.
# This may be replaced when dependencies are built.
