# Empty dependencies file for test_storeset.
# This may be replaced when dependencies are built.
