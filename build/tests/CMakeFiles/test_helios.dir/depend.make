# Empty dependencies file for test_helios.
# This may be replaced when dependencies are built.
