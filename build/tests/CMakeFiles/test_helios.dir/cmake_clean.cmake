file(REMOVE_RECURSE
  "CMakeFiles/test_helios.dir/test_helios.cc.o"
  "CMakeFiles/test_helios.dir/test_helios.cc.o.d"
  "test_helios"
  "test_helios.pdb"
  "test_helios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_helios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
