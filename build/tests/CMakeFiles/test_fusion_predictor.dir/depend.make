# Empty dependencies file for test_fusion_predictor.
# This may be replaced when dependencies are built.
