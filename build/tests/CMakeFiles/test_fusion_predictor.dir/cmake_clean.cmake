file(REMOVE_RECURSE
  "CMakeFiles/test_fusion_predictor.dir/test_fusion_predictor.cc.o"
  "CMakeFiles/test_fusion_predictor.dir/test_fusion_predictor.cc.o.d"
  "test_fusion_predictor"
  "test_fusion_predictor.pdb"
  "test_fusion_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fusion_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
