file(REMOVE_RECURSE
  "CMakeFiles/test_tage_fp.dir/test_tage_fp.cc.o"
  "CMakeFiles/test_tage_fp.dir/test_tage_fp.cc.o.d"
  "test_tage_fp"
  "test_tage_fp.pdb"
  "test_tage_fp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
