# Empty dependencies file for test_tage_fp.
# This may be replaced when dependencies are built.
