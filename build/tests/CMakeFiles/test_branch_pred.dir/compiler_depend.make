# Empty compiler generated dependencies file for test_branch_pred.
# This may be replaced when dependencies are built.
