file(REMOVE_RECURSE
  "CMakeFiles/test_riscv.dir/test_riscv.cc.o"
  "CMakeFiles/test_riscv.dir/test_riscv.cc.o.d"
  "test_riscv"
  "test_riscv.pdb"
  "test_riscv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
