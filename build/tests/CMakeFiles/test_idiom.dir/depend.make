# Empty dependencies file for test_idiom.
# This may be replaced when dependencies are built.
