file(REMOVE_RECURSE
  "CMakeFiles/test_idiom.dir/test_idiom.cc.o"
  "CMakeFiles/test_idiom.dir/test_idiom.cc.o.d"
  "test_idiom"
  "test_idiom.pdb"
  "test_idiom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idiom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
