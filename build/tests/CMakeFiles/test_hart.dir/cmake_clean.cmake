file(REMOVE_RECURSE
  "CMakeFiles/test_hart.dir/test_hart.cc.o"
  "CMakeFiles/test_hart.dir/test_hart.cc.o.d"
  "test_hart"
  "test_hart.pdb"
  "test_hart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
