file(REMOVE_RECURSE
  "CMakeFiles/test_asm_roundtrip.dir/test_asm_roundtrip.cc.o"
  "CMakeFiles/test_asm_roundtrip.dir/test_asm_roundtrip.cc.o.d"
  "test_asm_roundtrip"
  "test_asm_roundtrip.pdb"
  "test_asm_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
