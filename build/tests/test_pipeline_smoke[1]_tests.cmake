add_test([=[PipelineSmoke.McfAllModes]=]  /root/repo/build/tests/test_pipeline_smoke [==[--gtest_filter=PipelineSmoke.McfAllModes]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PipelineSmoke.McfAllModes]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_pipeline_smoke_TESTS PipelineSmoke.McfAllModes)
