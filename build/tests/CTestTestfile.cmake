# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_counters[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_riscv[1]_include.cmake")
include("/root/repo/build/tests/test_encode_decode[1]_include.cmake")
include("/root/repo/build/tests/test_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_hart[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_idiom[1]_include.cmake")
include("/root/repo/build/tests/test_uch[1]_include.cmake")
include("/root/repo/build/tests/test_fusion_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_branch_pred[1]_include.cmake")
include("/root/repo/build/tests/test_storeset[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_helios[1]_include.cmake")
include("/root/repo/build/tests/test_tage_fp[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_asm_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_hart_fuzz[1]_include.cmake")
