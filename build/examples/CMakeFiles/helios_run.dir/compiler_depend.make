# Empty compiler generated dependencies file for helios_run.
# This may be replaced when dependencies are built.
