file(REMOVE_RECURSE
  "CMakeFiles/helios_run.dir/helios_run.cpp.o"
  "CMakeFiles/helios_run.dir/helios_run.cpp.o.d"
  "helios_run"
  "helios_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
