# Empty dependencies file for workload_author.
# This may be replaced when dependencies are built.
