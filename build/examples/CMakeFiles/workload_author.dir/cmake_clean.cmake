file(REMOVE_RECURSE
  "CMakeFiles/workload_author.dir/workload_author.cpp.o"
  "CMakeFiles/workload_author.dir/workload_author.cpp.o.d"
  "workload_author"
  "workload_author.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_author.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
