# Empty dependencies file for fusion_explorer.
# This may be replaced when dependencies are built.
