file(REMOVE_RECURSE
  "libhelios_fusion.a"
)
