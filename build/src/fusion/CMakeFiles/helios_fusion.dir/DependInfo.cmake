
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/fusion_predictor.cc" "src/fusion/CMakeFiles/helios_fusion.dir/fusion_predictor.cc.o" "gcc" "src/fusion/CMakeFiles/helios_fusion.dir/fusion_predictor.cc.o.d"
  "/root/repo/src/fusion/idiom.cc" "src/fusion/CMakeFiles/helios_fusion.dir/idiom.cc.o" "gcc" "src/fusion/CMakeFiles/helios_fusion.dir/idiom.cc.o.d"
  "/root/repo/src/fusion/tage_fp.cc" "src/fusion/CMakeFiles/helios_fusion.dir/tage_fp.cc.o" "gcc" "src/fusion/CMakeFiles/helios_fusion.dir/tage_fp.cc.o.d"
  "/root/repo/src/fusion/uch.cc" "src/fusion/CMakeFiles/helios_fusion.dir/uch.cc.o" "gcc" "src/fusion/CMakeFiles/helios_fusion.dir/uch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/helios_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/helios_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
