# Empty compiler generated dependencies file for helios_fusion.
# This may be replaced when dependencies are built.
