file(REMOVE_RECURSE
  "CMakeFiles/helios_fusion.dir/fusion_predictor.cc.o"
  "CMakeFiles/helios_fusion.dir/fusion_predictor.cc.o.d"
  "CMakeFiles/helios_fusion.dir/idiom.cc.o"
  "CMakeFiles/helios_fusion.dir/idiom.cc.o.d"
  "CMakeFiles/helios_fusion.dir/tage_fp.cc.o"
  "CMakeFiles/helios_fusion.dir/tage_fp.cc.o.d"
  "CMakeFiles/helios_fusion.dir/uch.cc.o"
  "CMakeFiles/helios_fusion.dir/uch.cc.o.d"
  "libhelios_fusion.a"
  "libhelios_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
