file(REMOVE_RECURSE
  "libhelios_uarch.a"
)
