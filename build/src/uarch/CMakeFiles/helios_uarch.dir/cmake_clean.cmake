file(REMOVE_RECURSE
  "CMakeFiles/helios_uarch.dir/branch_pred.cc.o"
  "CMakeFiles/helios_uarch.dir/branch_pred.cc.o.d"
  "CMakeFiles/helios_uarch.dir/cache.cc.o"
  "CMakeFiles/helios_uarch.dir/cache.cc.o.d"
  "CMakeFiles/helios_uarch.dir/params.cc.o"
  "CMakeFiles/helios_uarch.dir/params.cc.o.d"
  "CMakeFiles/helios_uarch.dir/pipeline.cc.o"
  "CMakeFiles/helios_uarch.dir/pipeline.cc.o.d"
  "CMakeFiles/helios_uarch.dir/storeset.cc.o"
  "CMakeFiles/helios_uarch.dir/storeset.cc.o.d"
  "libhelios_uarch.a"
  "libhelios_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
