# Empty dependencies file for helios_uarch.
# This may be replaced when dependencies are built.
