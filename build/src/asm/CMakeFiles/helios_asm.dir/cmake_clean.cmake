file(REMOVE_RECURSE
  "CMakeFiles/helios_asm.dir/assembler.cc.o"
  "CMakeFiles/helios_asm.dir/assembler.cc.o.d"
  "CMakeFiles/helios_asm.dir/program.cc.o"
  "CMakeFiles/helios_asm.dir/program.cc.o.d"
  "libhelios_asm.a"
  "libhelios_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
