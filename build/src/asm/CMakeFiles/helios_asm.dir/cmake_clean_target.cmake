file(REMOVE_RECURSE
  "libhelios_asm.a"
)
