# Empty dependencies file for helios_asm.
# This may be replaced when dependencies are built.
