file(REMOVE_RECURSE
  "CMakeFiles/helios_isa.dir/decoder.cc.o"
  "CMakeFiles/helios_isa.dir/decoder.cc.o.d"
  "CMakeFiles/helios_isa.dir/disasm.cc.o"
  "CMakeFiles/helios_isa.dir/disasm.cc.o.d"
  "CMakeFiles/helios_isa.dir/encoder.cc.o"
  "CMakeFiles/helios_isa.dir/encoder.cc.o.d"
  "CMakeFiles/helios_isa.dir/riscv.cc.o"
  "CMakeFiles/helios_isa.dir/riscv.cc.o.d"
  "libhelios_isa.a"
  "libhelios_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
