file(REMOVE_RECURSE
  "libhelios_isa.a"
)
