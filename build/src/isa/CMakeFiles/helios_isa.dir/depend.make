# Empty dependencies file for helios_isa.
# This may be replaced when dependencies are built.
