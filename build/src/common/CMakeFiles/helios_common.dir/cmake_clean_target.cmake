file(REMOVE_RECURSE
  "libhelios_common.a"
)
