file(REMOVE_RECURSE
  "CMakeFiles/helios_common.dir/logging.cc.o"
  "CMakeFiles/helios_common.dir/logging.cc.o.d"
  "CMakeFiles/helios_common.dir/stats.cc.o"
  "CMakeFiles/helios_common.dir/stats.cc.o.d"
  "libhelios_common.a"
  "libhelios_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
