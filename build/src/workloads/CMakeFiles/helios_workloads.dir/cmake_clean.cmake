file(REMOVE_RECURSE
  "CMakeFiles/helios_workloads.dir/workloads.cc.o"
  "CMakeFiles/helios_workloads.dir/workloads.cc.o.d"
  "CMakeFiles/helios_workloads.dir/workloads_mibench.cc.o"
  "CMakeFiles/helios_workloads.dir/workloads_mibench.cc.o.d"
  "CMakeFiles/helios_workloads.dir/workloads_mibench2.cc.o"
  "CMakeFiles/helios_workloads.dir/workloads_mibench2.cc.o.d"
  "CMakeFiles/helios_workloads.dir/workloads_spec.cc.o"
  "CMakeFiles/helios_workloads.dir/workloads_spec.cc.o.d"
  "libhelios_workloads.a"
  "libhelios_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
