file(REMOVE_RECURSE
  "libhelios_workloads.a"
)
