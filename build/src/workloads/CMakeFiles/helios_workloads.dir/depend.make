# Empty dependencies file for helios_workloads.
# This may be replaced when dependencies are built.
