file(REMOVE_RECURSE
  "libhelios_sim.a"
)
