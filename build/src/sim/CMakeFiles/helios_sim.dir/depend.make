# Empty dependencies file for helios_sim.
# This may be replaced when dependencies are built.
