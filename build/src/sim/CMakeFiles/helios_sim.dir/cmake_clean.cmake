file(REMOVE_RECURSE
  "CMakeFiles/helios_sim.dir/hart.cc.o"
  "CMakeFiles/helios_sim.dir/hart.cc.o.d"
  "CMakeFiles/helios_sim.dir/memory.cc.o"
  "CMakeFiles/helios_sim.dir/memory.cc.o.d"
  "libhelios_sim.a"
  "libhelios_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
